//! Read/write strategy optimization: probability distributions over
//! quorums minimizing worst-site load.
//!
//! Following "Read-Write Quorum Systems Made Practical"
//! (arXiv:2104.04102): a *strategy* is a pair of distributions — σ_r
//! over read quorums, σ_w over write quorums. With read fraction `α`,
//! the load a strategy induces on site `s` is
//!
//! ```text
//! load(s) = α · Σ_{r ∋ s} σ_r(r)  +  (1−α) · Σ_{w ∋ s} σ_w(w)
//! ```
//!
//! and the system's load under the strategy is `max_s load(s)` — the
//! fraction of accesses the busiest site handles, whose inverse is
//! system throughput capacity. [`optimize_load`] minimizes this by an
//! LP-free deterministic multiplicative-weights game: an adversary
//! maintains weights over sites (seeking the overloaded one), the
//! strategy player best-responds with the lightest quorums, and the
//! averaged responses converge to the optimal mixed strategy. Both a
//! certified *achievable* load (the averaged strategy, an upper bound
//! on the optimum) and a certified *lower bound* (the best adversary
//! response value) are reported, so callers can see the duality gap.
//!
//! For vote-derived systems with uniform votes the optimum is known in
//! closed form ([`uniform_threshold_load`]), which anchors the
//! vote-vs-structural comparisons: the structural system's *achieved*
//! (upper-bound) load is compared against the vote system's *exact*
//! optimum, so "structural beats votes" claims are sound even with an
//! approximate solver.

use crate::expr::Expr;
use crate::system::QuorumSystem;
use std::fmt;

/// A probability distribution over a family of quorums.
#[derive(Debug, Clone, PartialEq)]
pub struct Strategy {
    quorums: Vec<u64>,
    probs: Vec<f64>,
}

impl Strategy {
    /// The uniform distribution over a non-empty family.
    pub fn uniform(quorums: &[u64]) -> Self {
        assert!(!quorums.is_empty(), "family must be non-empty");
        let p = 1.0 / quorums.len() as f64;
        Self {
            quorums: quorums.to_vec(),
            probs: vec![p; quorums.len()],
        }
    }

    /// A distribution from per-quorum weights (normalized here).
    ///
    /// # Panics
    /// Panics on length mismatch, negative weights, or zero total.
    pub fn from_weights(quorums: &[u64], weights: &[f64]) -> Self {
        assert_eq!(quorums.len(), weights.len(), "one weight per quorum");
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|&w| w >= 0.0) && total > 0.0,
            "weights must be non-negative with positive total"
        );
        Self {
            quorums: quorums.to_vec(),
            probs: weights.iter().map(|w| w / total).collect(),
        }
    }

    /// The quorums the strategy ranges over.
    pub fn quorums(&self) -> &[u64] {
        &self.quorums
    }

    /// The probability of each quorum, aligned with [`Self::quorums`].
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Probability that an access under this strategy touches `site`.
    pub fn site_load(&self, site: usize) -> f64 {
        self.quorums
            .iter()
            .zip(&self.probs)
            .filter(|(&q, _)| q >> site & 1 == 1)
            .map(|(_, &p)| p)
            .sum()
    }
}

/// Worst-site load of a read/write strategy pair at read fraction
/// `read_fraction`, maximized over the union support of both families.
pub fn mixed_load(read: &Strategy, write: &Strategy, read_fraction: f64) -> f64 {
    let support = read
        .quorums()
        .iter()
        .chain(write.quorums())
        .fold(0u64, |a, &q| a | q);
    let fw = 1.0 - read_fraction;
    let mut worst = 0.0f64;
    for s in 0..64 {
        if support >> s & 1 == 1 {
            let l = read_fraction * read.site_load(s) + fw * write.site_load(s);
            worst = worst.max(l);
        }
    }
    worst
}

/// The outcome of a load optimization.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Achieved worst-site load of the returned strategies — an upper
    /// bound on the system's optimal load, and itself achievable.
    pub load: f64,
    /// Certified lower bound on the optimal load (best adversary
    /// value observed); `lower_bound <= optimum <= load`.
    pub lower_bound: f64,
    /// Solver iterations performed.
    pub iterations: u64,
    /// The read-quorum distribution achieving `load`.
    pub read_strategy: Strategy,
    /// The write-quorum distribution achieving `load`.
    pub write_strategy: Strategy,
}

/// A system failed the resilience floor required of an optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceShortfall {
    /// The floor the caller demanded.
    pub required: u32,
    /// What the system actually tolerates.
    pub actual: u32,
}

impl fmt::Display for ResilienceShortfall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "system tolerates {} failures but {} were required",
            self.actual, self.required
        )
    }
}

impl std::error::Error for ResilienceShortfall {}

/// Minimizes worst-site load by deterministic multiplicative weights.
///
/// The zero-sum game: the adversary holds a distribution `y` over
/// sites; the strategy player answers with the read and write quorums
/// of least `y`-weight. Each round contributes `α·y(r*) + (1−α)·y(w*)`
/// as a lower bound on the game value, the chosen quorums accumulate
/// into the averaged strategy, and the adversary multiplicatively
/// boosts the sites those quorums touched. No entropy, no wall clock —
/// fully deterministic (ties broken by canonical family order), so
/// manifests built on these numbers stay byte-stable.
///
/// # Panics
/// Panics if `read_fraction` is outside `[0, 1]` or `iterations == 0`.
pub fn optimize_load(system: &QuorumSystem, read_fraction: f64, iterations: usize) -> LoadProfile {
    assert!(
        (0.0..=1.0).contains(&read_fraction),
        "read fraction must lie in [0,1]"
    );
    assert!(iterations >= 1, "need at least one iteration");
    let reads = system.reads();
    let writes = system.writes();
    let support = reads.iter().chain(writes).fold(0u64, |a, &q| a | q);
    let sites: Vec<usize> = (0..64).filter(|s| support >> s & 1 == 1).collect();
    let m = sites.len();
    let fw = 1.0 - read_fraction;
    // Standard MWU step size for losses in [0,1] over m experts.
    let eta = (8.0 * (m as f64).ln().max(1.0) / iterations as f64).sqrt();

    let mut weights = vec![1.0f64; m];
    let mut read_counts = vec![0u64; reads.len()];
    let mut write_counts = vec![0u64; writes.len()];
    let mut lower = 0.0f64;

    for _ in 0..iterations {
        let total: f64 = weights.iter().sum();
        let weight_of = |q: u64| -> f64 {
            sites
                .iter()
                .zip(&weights)
                .filter(|(&s, _)| q >> s & 1 == 1)
                .map(|(_, &w)| w)
                .sum::<f64>()
                / total
        };
        let argmin = |family: &[u64]| -> usize {
            let mut best = 0usize;
            let mut best_w = f64::INFINITY;
            for (i, &q) in family.iter().enumerate() {
                let w = weight_of(q);
                if w < best_w {
                    best_w = w;
                    best = i;
                }
            }
            best
        };
        let ri = argmin(reads);
        let wi = argmin(writes);
        lower = lower.max(read_fraction * weight_of(reads[ri]) + fw * weight_of(writes[wi]));
        read_counts[ri] += 1;
        write_counts[wi] += 1;
        let mut max_w = 0.0f64;
        for (i, &s) in sites.iter().enumerate() {
            let loss = read_fraction * f64::from((reads[ri] >> s & 1) as u32)
                + fw * f64::from((writes[wi] >> s & 1) as u32);
            weights[i] *= (eta * loss).exp();
            max_w = max_w.max(weights[i]);
        }
        // Renormalize so the weights never overflow on long runs.
        for w in &mut weights {
            *w /= max_w;
        }
    }

    let read_strategy = Strategy::from_weights(
        reads,
        &read_counts.iter().map(|&c| c as f64).collect::<Vec<_>>(),
    );
    let write_strategy = Strategy::from_weights(
        writes,
        &write_counts.iter().map(|&c| c as f64).collect::<Vec<_>>(),
    );
    let load = mixed_load(&read_strategy, &write_strategy, read_fraction);
    LoadProfile {
        load,
        lower_bound: lower,
        iterations: iterations as u64,
        read_strategy,
        write_strategy,
    }
}

/// [`optimize_load`] gated on a resilience floor: errs (without
/// optimizing) unless the system tolerates at least `min_resilience`
/// site failures — the f-resilience constraint of the comparison
/// protocol, which only pits systems of equal fault tolerance against
/// each other.
pub fn optimize_load_resilient(
    system: &QuorumSystem,
    read_fraction: f64,
    min_resilience: u32,
    iterations: usize,
) -> Result<LoadProfile, ResilienceShortfall> {
    let actual = system.resilience();
    if actual < min_resilience {
        return Err(ResilienceShortfall {
            required: min_resilience,
            actual,
        });
    }
    Ok(optimize_load(system, read_fraction, iterations))
}

/// Exact optimal load of a *uniform-vote* threshold system on `n`
/// sites with quorums `(q_r, q_w)` at read fraction `α`:
/// `(α·q_r + (1−α)·q_w) / n`.
///
/// Lower bound: every access touches at least `q_r` (resp. `q_w`)
/// sites, so total expected work per access is at least
/// `α·q_r + (1−α)·q_w`, and the busiest of `n` sites carries at least
/// the average. Achievability: strategies uniform over all
/// `q`-subsets load every site equally at exactly the average (by
/// symmetry each site lies in a `q/n` fraction of `q`-subsets).
pub fn uniform_threshold_load(n: usize, q_r: u64, q_w: u64, read_fraction: f64) -> f64 {
    assert!(
        n >= 1 && q_r >= 1 && q_w >= 1,
        "degenerate threshold system"
    );
    assert!(
        q_r as usize <= n && q_w as usize <= n,
        "quorum exceeds site count"
    );
    (read_fraction * q_r as f64 + (1.0 - read_fraction) * q_w as f64) / n as f64
}

/// Heuristic achievable load at scale: uniform strategies over the
/// capped families of [`Expr::quorums_capped`], whose cost is
/// polynomial in the expression size instead of exponential in `n`.
/// Returns an *achievable* load (a valid upper bound on the optimum);
/// the gap versus [`optimize_load`] is the price of not enumerating.
pub fn heuristic_load(read: &Expr, write: &Expr, read_fraction: f64, cap: usize) -> f64 {
    let r = Strategy::uniform(&read.quorums_capped(cap));
    let w = Strategy::uniform(&write.quorums_capped(cap));
    mixed_load(&r, &w, read_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 0.02;

    #[test]
    fn uniform_strategy_normalizes() {
        let s = Strategy::uniform(&[0b011, 0b101, 0b110]);
        let total: f64 = s.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Each site appears in 2 of 3 quorums.
        for site in 0..3 {
            assert!((s.site_load(site) - 2.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn majority_load_converges_to_known_optimum() {
        // Majority on 5 sites at α = 0.5: optimum (0.5·3 + 0.5·3)/5 = 0.6.
        let sys = QuorumSystem::majority(5, 0);
        let p = optimize_load(&sys, 0.5, 3000);
        let exact = uniform_threshold_load(5, 3, 3, 0.5);
        assert!(p.load >= p.lower_bound, "bounds must bracket");
        assert!(p.load <= exact + TOL, "upper {:.4} vs {exact}", p.load);
        assert!(
            p.lower_bound >= exact - TOL,
            "lower {:.4} vs {exact}",
            p.lower_bound
        );
    }

    #[test]
    fn grid_3x3_beats_every_vote_assignment_load() {
        // Grid optimum at α = 0.5 is 4/9 ≈ 0.4444 (reads: 3/9 average,
        // writes: 5/9, both balanced by symmetry). Every *uniform-vote*
        // tight pair on 9 sites costs (q_r + (10−q_r))/2/9 = 5/9 ≈ 0.5556.
        let grid = QuorumSystem::grid(3, 3, 0);
        let p = optimize_load(&grid, 0.5, 3000);
        assert!(p.load <= 4.0 / 9.0 + TOL, "grid load {:.4}", p.load);
        assert!(p.lower_bound >= 4.0 / 9.0 - TOL);
        let best_votes = uniform_threshold_load(9, 5, 5, 0.5);
        assert!(
            p.load < best_votes,
            "grid {:.4} must beat votes {best_votes:.4}",
            p.load
        );
    }

    #[test]
    fn hierarchical_matches_grid_optimum() {
        // hier-3x3 quorums are 4 sites out of 9, perfectly balanced:
        // optimum 4/9 for reads and writes alike.
        let sys = QuorumSystem::hierarchical(3, 3, 2, 2, 0);
        let p = optimize_load(&sys, 0.5, 3000);
        assert!(p.load <= 4.0 / 9.0 + TOL);
        assert!(p.lower_bound >= 4.0 / 9.0 - TOL);
    }

    #[test]
    fn skewed_read_fraction_shifts_load() {
        // At α = 1 (all reads) the grid load is the read-side optimum
        // 3/9; at α = 0 it is the write-side 5/9.
        let grid = QuorumSystem::grid(3, 3, 0);
        let reads_only = optimize_load(&grid, 1.0, 2000);
        let writes_only = optimize_load(&grid, 0.0, 2000);
        assert!(reads_only.load <= 3.0 / 9.0 + TOL);
        assert!(writes_only.load <= 5.0 / 9.0 + TOL);
        assert!(reads_only.load < writes_only.load);
    }

    #[test]
    fn resilience_gate_rejects_fragile_systems() {
        use quorum_core::{QuorumSpec, VoteAssignment};
        let votes = VoteAssignment::uniform(5);
        let rowa = QuorumSystem::from_spec("rowa", &votes, QuorumSpec::read_one_write_all(5));
        let err = optimize_load_resilient(&rowa, 0.5, 1, 500).expect_err("resilience 0 < 1");
        assert_eq!(err.required, 1);
        assert_eq!(err.actual, 0);
        assert!(err.to_string().contains("tolerates 0"));
        let maj = QuorumSystem::majority(5, 0);
        assert!(optimize_load_resilient(&maj, 0.5, 2, 500).is_ok());
    }

    #[test]
    fn heuristic_load_is_achievable_upper_bound() {
        let grid = QuorumSystem::grid(3, 3, 0);
        let exact = optimize_load(&grid, 0.5, 3000);
        let h = heuristic_load(grid.read_expr(), grid.write_expr(), 0.5, 8);
        // The heuristic can't beat the optimum (beyond solver slack)...
        assert!(h >= exact.lower_bound - 1e-9);
        // ...and stays a sane bounded load.
        assert!(h <= 1.0 + 1e-9);
    }

    #[test]
    fn optimizer_is_deterministic() {
        let sys = QuorumSystem::grid(3, 3, 0);
        let a = optimize_load(&sys, 0.6, 500);
        let b = optimize_load(&sys, 0.6, 500);
        assert_eq!(a.load.to_bits(), b.load.to_bits());
        assert_eq!(a.lower_bound.to_bits(), b.lower_bound.to_bits());
        for (x, y) in a.read_strategy.probs().iter().zip(b.read_strategy.probs()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn threshold_load_formula() {
        assert!((uniform_threshold_load(9, 5, 5, 0.5) - 5.0 / 9.0).abs() < 1e-12);
        assert!((uniform_threshold_load(9, 1, 9, 1.0) - 1.0 / 9.0).abs() < 1e-12);
        assert!((uniform_threshold_load(9, 1, 9, 0.0) - 1.0).abs() < 1e-12);
    }
}
