//! General quorum-system algebra — ROADMAP item "beyond voting".
//!
//! The paper optimizes *vote assignments*, but weighted voting captures
//! a strict subset of quorum systems (Garcia-Molina & Barbara \[8\]).
//! This crate supplies the missing generality as a quoracle-style
//! expression algebra:
//!
//! * [`Expr`] — monotone formulas `Node`/`And`/`Or`/`Choose(k, ...)`
//!   over site ids, with [`Expr::dual`], exact
//!   [`Expr::weighted_threshold`] conversion from vote vectors, and
//!   minimal-quorum enumeration (structural, powerset reference, and a
//!   capped heuristic for scale);
//! * [`QuorumSystem`] — named read/write families with an explicit
//!   [`IntersectionCertificate`] (checked safety, not assumed), exact
//!   crash [`QuorumSystem::resilience`], and constructors for majority,
//!   grid, hierarchical, and vote-derived systems;
//! * [`strategy`] — LP-free load optimization over quorum
//!   distributions with certified upper *and* lower bounds, the exact
//!   closed form for uniform-vote thresholds, and an f-resilience
//!   constraint gate;
//! * [`AlgebraProtocol`] / [`view_availability`] — adapters running
//!   any certified system through the replica simulator's component
//!   machinery, so vote-optimal and structurally-optimal systems race
//!   on the paper's topologies under identical failure processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expr;
pub mod protocol;
pub mod strategy;
pub mod system;

pub use expr::Expr;
pub use protocol::{view_availability, AlgebraProtocol};
pub use strategy::{
    heuristic_load, mixed_load, optimize_load, optimize_load_resilient, uniform_threshold_load,
    LoadProfile, ResilienceShortfall, Strategy,
};
pub use system::{CertFailure, IntersectionCertificate, QuorumSystem};
