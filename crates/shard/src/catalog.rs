//! Per-object quorum/workload catalog.
//!
//! A catalog maps each object id to an **object class** — a (vote
//! assignment, quorum spec, read ratio, base access rate) tuple — plus a
//! deterministic per-object rate jitter, so a million objects don't need
//! a million stored records. Class and rate assignment are pure hashes
//! of the object id (fixed salts, independent of the run seed), so the
//! same object keeps the same quorum configuration across seeds and the
//! workload composition is stable for baseline comparisons.

use quorum_core::quorum::QuorumSpec;
use quorum_core::votes::VoteAssignment;
use quorum_stats::rng::derive_seed;

/// Salt for the object → class hash (fixed: workload shape is part of
/// the benchmark definition, not of the run seed).
const CLASS_SALT: u64 = 0x5348_4152_445f_434c; // "SHARD_CL"
/// Salt for the object → rate-jitter hash.
const RATE_SALT: u64 = 0x5348_4152_445f_5254; // "SHARD_RT"

/// One equivalence class of objects: how they vote and how they are
/// accessed.
#[derive(Debug, Clone)]
pub struct ObjectClass {
    /// Human-readable label (manifest/debug only).
    pub name: &'static str,
    /// Votes per site for objects of this class.
    pub votes: VoteAssignment,
    /// Read/write quorum thresholds over those votes.
    pub spec: QuorumSpec,
    /// Probability an access is a read.
    pub alpha: f64,
    /// Base Poisson access rate (events per unit simulated time),
    /// before per-object jitter.
    pub base_rate: f64,
}

/// The full object population: classes plus the object → class map.
#[derive(Debug, Clone)]
pub struct ObjectCatalog {
    classes: Vec<ObjectClass>,
    objects: u64,
}

impl ObjectCatalog {
    /// A heterogeneous population over `n_sites` sites in the spirit of
    /// the paper's §5 study: majority voting as the baseline, a
    /// read-optimized assignment (small read quorum), a write-heavy
    /// majority class, a weighted "core sites carry 3 votes" class, and
    /// read-one/write-all for the almost-never-written tail.
    ///
    /// # Panics
    /// Panics if `n_sites < 2` or `objects == 0`.
    pub fn paper_mix(n_sites: usize, objects: u64) -> Self {
        assert!(n_sites >= 2, "need at least two sites");
        assert!(objects > 0, "need at least one object");
        let n = n_sites as u64;
        let core = n_sites.min(5);
        let mut weighted = vec![1u64; n_sites];
        for w in weighted.iter_mut().take(core) {
            *w = 3;
        }
        let weighted_total: u64 = weighted.iter().sum();
        let classes = vec![
            ObjectClass {
                name: "maj-balanced",
                votes: VoteAssignment::uniform(n_sites),
                spec: QuorumSpec::majority(n),
                alpha: 0.70,
                base_rate: 1.0,
            },
            ObjectClass {
                name: "read-mostly",
                votes: VoteAssignment::uniform(n_sites),
                spec: QuorumSpec::from_read_quorum((n / 4).max(1), n)
                    .expect("1 <= n/4 <= n/2 for n >= 2"),
                alpha: 0.95,
                base_rate: 2.0,
            },
            ObjectClass {
                name: "write-heavy",
                votes: VoteAssignment::uniform(n_sites),
                spec: QuorumSpec::majority(n),
                alpha: 0.30,
                base_rate: 0.5,
            },
            ObjectClass {
                name: "weighted-core",
                votes: VoteAssignment::weighted(weighted),
                spec: QuorumSpec::majority(weighted_total),
                alpha: 0.70,
                base_rate: 1.0,
            },
            ObjectClass {
                name: "rowa",
                votes: VoteAssignment::uniform(n_sites),
                spec: QuorumSpec::read_one_write_all(n),
                alpha: 0.99,
                base_rate: 4.0,
            },
        ];
        Self { classes, objects }
    }

    /// Number of object classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of objects in the population.
    pub fn num_objects(&self) -> u64 {
        self.objects
    }

    /// The classes, index-aligned with [`Self::class_of`].
    pub fn classes(&self) -> &[ObjectClass] {
        &self.classes
    }

    /// The class definition for index `k`.
    pub fn class(&self, k: usize) -> &ObjectClass {
        &self.classes[k]
    }

    /// Class index of one object (pure hash of the id).
    pub fn class_of(&self, object: u64) -> usize {
        (derive_seed(CLASS_SALT, object) % self.classes.len() as u64) as usize
    }

    /// Poisson access rate of one object: the class base rate scaled by
    /// a deterministic jitter uniform in `[0.5, 1.5)`, so arrival gaps
    /// differ across objects of the same class.
    pub fn rate_of(&self, object: u64) -> f64 {
        let u = (derive_seed(RATE_SALT, object) >> 11) as f64 / (1u64 << 53) as f64;
        self.classes[self.class_of(object)].base_rate * (0.5 + u)
    }

    /// Mean access rate over the whole population (exact sum of
    /// [`Self::rate_of`]; used for load reporting, not for sampling).
    pub fn total_rate(&self) -> f64 {
        (0..self.objects).map(|o| self.rate_of(o)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_core::protocol::Access;

    #[test]
    fn paper_mix_has_five_classes_and_all_are_hit() {
        let c = ObjectCatalog::paper_mix(13, 1000);
        assert_eq!(c.num_classes(), 5);
        let mut seen = vec![0u64; c.num_classes()];
        for o in 0..c.num_objects() {
            seen[c.class_of(o)] += 1;
        }
        assert!(
            seen.iter().all(|&n| n > 0),
            "hash should spread objects over every class: {seen:?}"
        );
    }

    #[test]
    fn rates_are_jittered_within_half_to_threehalves_of_base() {
        let c = ObjectCatalog::paper_mix(7, 500);
        let mut distinct = std::collections::BTreeSet::new();
        for o in 0..c.num_objects() {
            let base = c.class(c.class_of(o)).base_rate;
            let r = c.rate_of(o);
            assert!(r >= 0.5 * base && r < 1.5 * base, "rate {r} vs base {base}");
            distinct.insert(r.to_bits());
        }
        assert!(
            distinct.len() > 100,
            "jitter should be near-unique per object"
        );
    }

    #[test]
    fn class_and_rate_are_deterministic_and_seed_free() {
        let a = ObjectCatalog::paper_mix(9, 64);
        let b = ObjectCatalog::paper_mix(9, 64);
        for o in 0..64 {
            assert_eq!(a.class_of(o), b.class_of(o));
            assert_eq!(a.rate_of(o).to_bits(), b.rate_of(o).to_bits());
        }
    }

    #[test]
    fn specs_are_internally_consistent() {
        let c = ObjectCatalog::paper_mix(101, 1);
        for class in c.classes() {
            assert_eq!(class.spec.total(), class.votes.total(), "{}", class.name);
            assert!(class.spec.threshold(Access::Read) >= 1);
            assert!((0.0..=1.0).contains(&class.alpha));
            assert!(class.base_rate > 0.0);
        }
    }

    #[test]
    fn weighted_core_concentrates_votes() {
        let c = ObjectCatalog::paper_mix(101, 1);
        let weighted = &c.classes()[3];
        assert_eq!(weighted.votes.votes_of(0), 3);
        assert_eq!(weighted.votes.votes_of(100), 1);
        assert_eq!(weighted.votes.total(), 5 * 3 + 96);
    }

    #[test]
    fn tiny_population_still_valid() {
        let c = ObjectCatalog::paper_mix(2, 3);
        for class in c.classes() {
            assert!(class.spec.q_r() >= 1);
        }
    }
}
