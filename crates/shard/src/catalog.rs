//! Per-object quorum/workload catalog.
//!
//! A catalog maps each object id to an **object class** — a (vote
//! assignment, quorum spec, read ratio, base access rate) tuple — plus a
//! deterministic per-object rate jitter, so a million objects don't need
//! a million stored records. Class and rate assignment are pure hashes
//! of the object id (fixed salts, independent of the run seed), so the
//! same object keeps the same quorum configuration across seeds and the
//! workload composition is stable for baseline comparisons.
//!
//! On top of the classes sits the **assignment table**: every object
//! resolves (again by pure hash) to an [`AssignmentProfile`] — the
//! (vote table, quorum spec) pair the timeline grants against. In the
//! plain [`ObjectCatalog::paper_mix`] the table is one profile per
//! class; [`ObjectCatalog::with_optimized_assignments`] expands it to
//! **per-object** assignments: objects of one class spread over a set
//! of read-ratio buckets, and the paper's optimizer
//! ([`quorum_core::optimal`]) picks each bucket's `q_r` for that
//! bucket's α. The engine then simulates a population where no two
//! objects need share a quorum spec — the regime the paper's
//! optimization exists for.

use quorum_core::optimal::{optimal_quorum, SearchStrategy};
use quorum_core::quorum::QuorumSpec;
use quorum_core::votes::VoteAssignment;
use quorum_core::AvailabilityModel;
use quorum_stats::rng::derive_seed;
use quorum_stats::DiscreteDist;

/// Salt for the object → class hash (fixed: workload shape is part of
/// the benchmark definition, not of the run seed).
const CLASS_SALT: u64 = 0x5348_4152_445f_434c; // "SHARD_CL"
/// Salt for the object → rate-jitter hash.
const RATE_SALT: u64 = 0x5348_4152_445f_5254; // "SHARD_RT"
/// Salt for the object → α-bucket hash (per-object assignments).
const BUCKET_SALT: u64 = 0x5348_4152_445f_4142; // "SHARD_AB"

/// One equivalence class of objects: how they vote and how they are
/// accessed.
#[derive(Debug, Clone)]
pub struct ObjectClass {
    /// Human-readable label (manifest/debug only).
    pub name: &'static str,
    /// Votes per site for objects of this class.
    pub votes: VoteAssignment,
    /// Read/write quorum thresholds over those votes.
    pub spec: QuorumSpec,
    /// Probability an access is a read (class baseline; per-object α
    /// may spread around it under bucketed assignments).
    pub alpha: f64,
    /// Base Poisson access rate (events per unit simulated time),
    /// before per-object jitter.
    pub base_rate: f64,
}

/// One entry of the assignment table: the (vote table, spec) pair a set
/// of objects is granted quorums under. The timeline precomputes one
/// grant row per profile per epoch.
#[derive(Debug, Clone)]
pub struct AssignmentProfile {
    /// Human-readable label (manifest/debug only).
    pub name: String,
    /// Index into [`ObjectCatalog::vote_tables`] — profiles sharing a
    /// vote table share the per-component vote sums the timeline
    /// computes per epoch.
    pub votes_key: usize,
    /// Read/write quorum thresholds over that vote table.
    pub spec: QuorumSpec,
}

/// The full object population: classes, the assignment table, and the
/// object → class / α-bucket maps.
#[derive(Debug, Clone)]
pub struct ObjectCatalog {
    classes: Vec<ObjectClass>,
    /// Distinct vote assignments referenced by the profiles.
    vote_tables: Vec<VoteAssignment>,
    /// The assignment table (≥ 1 profile per class).
    profiles: Vec<AssignmentProfile>,
    /// `class * buckets + bucket` → profile index.
    slot_profile: Vec<usize>,
    /// `class * buckets + bucket` → per-object read ratio.
    slot_alpha: Vec<f64>,
    /// α-buckets per class (1 = per-class assignments).
    buckets: usize,
    objects: u64,
    /// Objective evaluations the optimizer spent building the table.
    optimizer_evaluations: u64,
}

impl ObjectCatalog {
    /// A heterogeneous population over `n_sites` sites in the spirit of
    /// the paper's §5 study: majority voting as the baseline, a
    /// read-optimized assignment (small read quorum), a write-heavy
    /// majority class, a weighted "core sites carry 3 votes" class, and
    /// read-one/write-all for the almost-never-written tail.
    ///
    /// # Panics
    /// Panics if `n_sites < 2` or `objects == 0`.
    pub fn paper_mix(n_sites: usize, objects: u64) -> Self {
        assert!(n_sites >= 2, "need at least two sites");
        assert!(objects > 0, "need at least one object");
        let n = n_sites as u64;
        let core = n_sites.min(5);
        let mut weighted = vec![1u64; n_sites];
        for w in weighted.iter_mut().take(core) {
            *w = 3;
        }
        let weighted_total: u64 = weighted.iter().sum();
        let classes = vec![
            ObjectClass {
                name: "maj-balanced",
                votes: VoteAssignment::uniform(n_sites),
                spec: QuorumSpec::majority(n),
                alpha: 0.70,
                base_rate: 1.0,
            },
            ObjectClass {
                name: "read-mostly",
                votes: VoteAssignment::uniform(n_sites),
                spec: QuorumSpec::from_read_quorum((n / 4).max(1), n)
                    .expect("1 <= n/4 <= n/2 for n >= 2"),
                alpha: 0.95,
                base_rate: 2.0,
            },
            ObjectClass {
                name: "write-heavy",
                votes: VoteAssignment::uniform(n_sites),
                spec: QuorumSpec::majority(n),
                alpha: 0.30,
                base_rate: 0.5,
            },
            ObjectClass {
                name: "weighted-core",
                votes: VoteAssignment::weighted(weighted),
                spec: QuorumSpec::majority(weighted_total),
                alpha: 0.70,
                base_rate: 1.0,
            },
            ObjectClass {
                name: "rowa",
                votes: VoteAssignment::uniform(n_sites),
                spec: QuorumSpec::read_one_write_all(n),
                alpha: 0.99,
                base_rate: 4.0,
            },
        ];
        // One profile per class; vote tables deduped structurally so the
        // timeline computes per-component vote sums once per table, not
        // once per class.
        let mut vote_tables: Vec<VoteAssignment> = Vec::new();
        let mut profiles = Vec::with_capacity(classes.len());
        let mut slot_alpha = Vec::with_capacity(classes.len());
        for class in &classes {
            let votes_key = intern_votes(&mut vote_tables, &class.votes);
            profiles.push(AssignmentProfile {
                name: class.name.to_string(),
                votes_key,
                spec: class.spec,
            });
            slot_alpha.push(class.alpha);
        }
        Self {
            slot_profile: (0..classes.len()).collect(),
            classes,
            vote_tables,
            profiles,
            slot_alpha,
            buckets: 1,
            objects,
            optimizer_evaluations: 0,
        }
    }

    /// Expands the assignment table to **per-object** assignments:
    /// objects of each class spread (by pure hash) over `buckets`
    /// read-ratio buckets whose α values fan `± spread` around the
    /// class α, and each uniform-vote bucket's quorum spec is chosen by
    /// the paper's optimizer over `density` — the component-vote
    /// distribution of the deployment's topology (for uniform votes,
    /// component votes = component sites, so any analytic site-count
    /// density from [`quorum_core::analytic`] fits directly).
    ///
    /// Non-uniform classes (weighted-core) keep their engineered spec in
    /// every bucket: the availability model quantifies over exchangeable
    /// vote densities, which a weighted table does not satisfy.
    /// Profiles that optimize to the same spec are deduplicated, so the
    /// timeline's grant table only grows by the number of *distinct*
    /// optimal assignments.
    ///
    /// # Panics
    /// Panics if `buckets == 0`, `spread` is negative/non-finite, or
    /// `density`'s vote domain disagrees with the uniform classes'
    /// vote totals.
    pub fn with_optimized_assignments(
        mut self,
        density: &DiscreteDist,
        buckets: usize,
        spread: f64,
    ) -> Self {
        assert!(buckets >= 1, "need at least one alpha bucket");
        assert!(spread >= 0.0 && spread.is_finite(), "spread must be >= 0");
        let model = AvailabilityModel::from_mixtures(density, density);
        let mut profiles: Vec<AssignmentProfile> = Vec::new();
        let mut slot_profile = Vec::with_capacity(self.classes.len() * buckets);
        let mut slot_alpha = Vec::with_capacity(self.classes.len() * buckets);
        let mut evaluations = 0u64;
        for class in &self.classes {
            let votes_key = intern_votes(&mut self.vote_tables, &class.votes);
            if class.votes.is_uniform() {
                assert_eq!(
                    model.total_votes(),
                    class.votes.total(),
                    "density domain must match the uniform vote total"
                );
            }
            for b in 0..buckets {
                let alpha = bucket_alpha(class.alpha, b, buckets, spread);
                let spec = if class.votes.is_uniform() {
                    let opt = optimal_quorum(&model, alpha, SearchStrategy::EndpointGolden);
                    evaluations += opt.evaluations as u64;
                    opt.spec
                } else {
                    class.spec
                };
                let profile = profiles
                    .iter()
                    .position(|p| {
                        p.votes_key == votes_key
                            && p.spec.q_r() == spec.q_r()
                            && p.spec.q_w() == spec.q_w()
                    })
                    .unwrap_or_else(|| {
                        profiles.push(AssignmentProfile {
                            name: format!("{}/qr{}", class.name, spec.q_r()),
                            votes_key,
                            spec,
                        });
                        profiles.len() - 1
                    });
                slot_profile.push(profile);
                slot_alpha.push(alpha);
            }
        }
        self.profiles = profiles;
        self.slot_profile = slot_profile;
        self.slot_alpha = slot_alpha;
        self.buckets = buckets;
        self.optimizer_evaluations = evaluations;
        self
    }

    /// Number of object classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of objects in the population.
    pub fn num_objects(&self) -> u64 {
        self.objects
    }

    /// The classes, index-aligned with [`Self::class_of`].
    pub fn classes(&self) -> &[ObjectClass] {
        &self.classes
    }

    /// The class definition for index `k`.
    pub fn class(&self, k: usize) -> &ObjectClass {
        &self.classes[k]
    }

    /// The assignment table, index-aligned with [`Self::assignment_of`].
    pub fn profiles(&self) -> &[AssignmentProfile] {
        &self.profiles
    }

    /// Number of assignment profiles (grant rows per timeline epoch).
    pub fn num_assignments(&self) -> usize {
        self.profiles.len()
    }

    /// Distinct vote assignments referenced by
    /// [`AssignmentProfile::votes_key`].
    pub fn vote_tables(&self) -> &[VoteAssignment] {
        &self.vote_tables
    }

    /// α-buckets per class (1 = per-class assignments).
    pub fn alpha_buckets(&self) -> usize {
        self.buckets
    }

    /// Objective evaluations spent building the assignment table (0 for
    /// the per-class [`Self::paper_mix`]).
    pub fn optimizer_evaluations(&self) -> u64 {
        self.optimizer_evaluations
    }

    /// Class index of one object (pure hash of the id).
    pub fn class_of(&self, object: u64) -> usize {
        (derive_seed(CLASS_SALT, object) % self.classes.len() as u64) as usize
    }

    /// α-bucket of one object (pure hash of the id; always 0 when the
    /// table is per-class).
    fn bucket_of(&self, object: u64) -> usize {
        if self.buckets == 1 {
            0
        } else {
            (derive_seed(BUCKET_SALT, object) % self.buckets as u64) as usize
        }
    }

    /// Assignment-profile index of one object.
    #[inline]
    pub fn assignment_of(&self, object: u64) -> usize {
        self.slot_profile[self.class_of(object) * self.buckets + self.bucket_of(object)]
    }

    /// Read ratio of one object (the class α, or its bucket's α under
    /// per-object assignments).
    #[inline]
    pub fn alpha_of(&self, object: u64) -> f64 {
        self.slot_alpha[self.class_of(object) * self.buckets + self.bucket_of(object)]
    }

    /// Poisson access rate of one object: the class base rate scaled by
    /// a deterministic jitter uniform in `[0.5, 1.5)`, so arrival gaps
    /// differ across objects of the same class.
    pub fn rate_of(&self, object: u64) -> f64 {
        let u = (derive_seed(RATE_SALT, object) >> 11) as f64 / (1u64 << 53) as f64;
        self.classes[self.class_of(object)].base_rate * (0.5 + u)
    }

    /// Mean access rate over the whole population (exact sum of
    /// [`Self::rate_of`]; used for load reporting, not for sampling).
    pub fn total_rate(&self) -> f64 {
        (0..self.objects).map(|o| self.rate_of(o)).sum()
    }
}

/// Index of `votes` in `tables`, interning it if new.
fn intern_votes(tables: &mut Vec<VoteAssignment>, votes: &VoteAssignment) -> usize {
    tables
        .iter()
        .position(|t| t.as_slice() == votes.as_slice())
        .unwrap_or_else(|| {
            tables.push(votes.clone());
            tables.len() - 1
        })
}

/// α of bucket `b` of `buckets`: the class α shifted linearly across
/// `[-spread, +spread]`, clamped to `[0.01, 0.99]` so both access kinds
/// keep nonzero probability.
fn bucket_alpha(class_alpha: f64, b: usize, buckets: usize, spread: f64) -> f64 {
    let offset = if buckets == 1 {
        0.0
    } else {
        spread * (2.0 * b as f64 / (buckets - 1) as f64 - 1.0)
    };
    (class_alpha + offset).clamp(0.01, 0.99)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_core::protocol::Access;

    #[test]
    fn paper_mix_has_five_classes_and_all_are_hit() {
        let c = ObjectCatalog::paper_mix(13, 1000);
        assert_eq!(c.num_classes(), 5);
        let mut seen = vec![0u64; c.num_classes()];
        for o in 0..c.num_objects() {
            seen[c.class_of(o)] += 1;
        }
        assert!(
            seen.iter().all(|&n| n > 0),
            "hash should spread objects over every class: {seen:?}"
        );
    }

    #[test]
    fn rates_are_jittered_within_half_to_threehalves_of_base() {
        let c = ObjectCatalog::paper_mix(7, 500);
        let mut distinct = std::collections::BTreeSet::new();
        for o in 0..c.num_objects() {
            let base = c.class(c.class_of(o)).base_rate;
            let r = c.rate_of(o);
            assert!(r >= 0.5 * base && r < 1.5 * base, "rate {r} vs base {base}");
            distinct.insert(r.to_bits());
        }
        assert!(
            distinct.len() > 100,
            "jitter should be near-unique per object"
        );
    }

    #[test]
    fn class_and_rate_are_deterministic_and_seed_free() {
        let a = ObjectCatalog::paper_mix(9, 64);
        let b = ObjectCatalog::paper_mix(9, 64);
        for o in 0..64 {
            assert_eq!(a.class_of(o), b.class_of(o));
            assert_eq!(a.rate_of(o).to_bits(), b.rate_of(o).to_bits());
        }
    }

    #[test]
    fn specs_are_internally_consistent() {
        let c = ObjectCatalog::paper_mix(101, 1);
        for class in c.classes() {
            assert_eq!(class.spec.total(), class.votes.total(), "{}", class.name);
            assert!(class.spec.threshold(Access::Read) >= 1);
            assert!((0.0..=1.0).contains(&class.alpha));
            assert!(class.base_rate > 0.0);
        }
    }

    #[test]
    fn weighted_core_concentrates_votes() {
        let c = ObjectCatalog::paper_mix(101, 1);
        let weighted = &c.classes()[3];
        assert_eq!(weighted.votes.votes_of(0), 3);
        assert_eq!(weighted.votes.votes_of(100), 1);
        assert_eq!(weighted.votes.total(), 5 * 3 + 96);
    }

    #[test]
    fn tiny_population_still_valid() {
        let c = ObjectCatalog::paper_mix(2, 3);
        for class in c.classes() {
            assert!(class.spec.q_r() >= 1);
        }
    }

    #[test]
    fn paper_mix_assignment_table_is_one_profile_per_class() {
        let c = ObjectCatalog::paper_mix(13, 100);
        assert_eq!(c.num_assignments(), c.num_classes());
        assert_eq!(c.alpha_buckets(), 1);
        assert_eq!(c.optimizer_evaluations(), 0);
        // Four uniform classes share one table; weighted-core has its own.
        assert_eq!(c.vote_tables().len(), 2);
        for o in 0..c.num_objects() {
            assert_eq!(c.assignment_of(o), c.class_of(o));
            let k = c.class_of(o);
            assert!((c.alpha_of(o) - c.class(k).alpha).abs() < 1e-15);
            let p = &c.profiles()[c.assignment_of(o)];
            assert_eq!(p.spec.q_r(), c.class(k).spec.q_r());
            assert_eq!(
                c.vote_tables()[p.votes_key].as_slice(),
                c.class(k).votes.as_slice()
            );
        }
    }

    fn optimized_fixture(n_sites: usize, objects: u64, buckets: usize) -> ObjectCatalog {
        let density = quorum_core::analytic::ring_density(n_sites, 0.96, 0.96);
        ObjectCatalog::paper_mix(n_sites, objects)
            .with_optimized_assignments(&density, buckets, 0.2)
    }

    #[test]
    fn optimized_assignments_spread_alpha_and_specs_per_object() {
        let c = optimized_fixture(13, 400, 5);
        assert_eq!(c.alpha_buckets(), 5);
        assert!(c.optimizer_evaluations() > 0);
        // More profiles than classes: the buckets produced distinct
        // optimizer picks somewhere in the mix.
        assert!(
            c.num_assignments() > c.num_classes(),
            "{} profiles",
            c.num_assignments()
        );
        // Two objects of the same class in different buckets can carry
        // different α and different assignments.
        let mut alphas_per_class = vec![std::collections::BTreeSet::new(); c.num_classes()];
        for o in 0..c.num_objects() {
            alphas_per_class[c.class_of(o)].insert(c.alpha_of(o).to_bits());
            let p = &c.profiles()[c.assignment_of(o)];
            assert!(p.spec.q_r() >= 1);
            // Vote table matches the object's class table.
            assert_eq!(
                c.vote_tables()[p.votes_key].as_slice(),
                c.class(c.class_of(o)).votes.as_slice()
            );
        }
        assert!(alphas_per_class.iter().any(|s| s.len() > 1));
    }

    #[test]
    fn optimized_weighted_class_keeps_engineered_spec() {
        let c = optimized_fixture(13, 100, 3);
        let weighted_key = c
            .vote_tables()
            .iter()
            .position(|t| !t.is_uniform())
            .expect("weighted table interned");
        for p in c.profiles().iter().filter(|p| p.votes_key == weighted_key) {
            assert_eq!(p.spec.q_r(), c.class(3).spec.q_r());
            assert_eq!(p.spec.q_w(), c.class(3).spec.q_w());
        }
    }

    #[test]
    fn optimizer_favors_looser_reads_for_read_heavy_buckets() {
        let c = optimized_fixture(13, 100, 5);
        // The rowa class at α ≈ 0.99: optimal q_r should sit at the loose
        // end, strictly below majority.
        let rowa_profiles: Vec<_> = (0..c.num_objects())
            .filter(|&o| c.class_of(o) == 4)
            .map(|o| c.profiles()[c.assignment_of(o)].spec.q_r())
            .collect();
        assert!(!rowa_profiles.is_empty());
        assert!(
            rowa_profiles.iter().all(|&q| q < 7),
            "read-heavy objects must not pay majority reads: {rowa_profiles:?}"
        );
    }

    #[test]
    fn bucket_alpha_is_clamped_and_centered() {
        assert!((bucket_alpha(0.5, 0, 1, 0.2) - 0.5).abs() < 1e-15);
        assert!((bucket_alpha(0.5, 0, 3, 0.2) - 0.3).abs() < 1e-15);
        assert!((bucket_alpha(0.5, 2, 3, 0.2) - 0.7).abs() < 1e-15);
        assert!(bucket_alpha(0.99, 4, 5, 0.3) <= 0.99);
        assert!(bucket_alpha(0.01, 0, 5, 0.3) >= 0.01);
    }
}
