//! The throughput engine: batched SoA stripe walks vs the naive heap.
//!
//! Both engines simulate the identical system — every object's Poisson
//! access walk over the shared [`FailureTimeline`] — and consume each
//! object's counter-based RNG stream at the identical positions, so
//! their aggregate statistics are **equal**, not merely statistically
//! indistinguishable.
//!
//! ## The RNG draw-order contract
//!
//! Object `o` owns the [`CounterRng`] stream `derive_seed(master, o)`
//! (`master` = `derive_seed(seed, 2)`). Draw 0 is the gap to the first
//! access; access `i` (0-based) then consumes draws `1 + 3i` (read/write
//! kind), `2 + 3i` (submitting site), and `3 + 3i` (gap to the next
//! access). Because a draw is a pure function of `(seed, counter)`,
//! the batched kernel can sample a whole stripe's next accesses in one
//! branchless pass while the heap engine walks the same streams one
//! draw at a time — and both land on bit-identical values.
//!
//! ## The two engines
//!
//! * [`ShardEngine::run_sharded`] partitions the object space into
//!   contiguous shards and fans them through [`quorum_stats::converge`]
//!   (one shard walks inline). Each shard walks its objects in SoA
//!   **stripes** of [`STRIPE`] lanes — per-lane seed/counter/clock/rate
//!   arrays, a batched sampling pass, then a resolve pass against the
//!   timeline's bucketed epoch index — and returns an all-`u64`
//!   [`ShardStats`] whose merge is associative and commutative, making
//!   the aggregate invariant to shard partitioning *and* thread count.
//! * [`ShardEngine::run_naive`] is the classical formulation: one
//!   binary-heap future-event list holding every object's next access,
//!   popped one access at a time (`O(log N)` per access with `N` heap
//!   entries). It exists as the correctness pin and as the benchmark
//!   baseline the batched path is measured against.

use crate::catalog::ObjectCatalog;
use crate::timeline::{FailureTimeline, READ_BIT, WRITE_BIT};
use quorum_graph::Topology;
use quorum_stats::rng::{derive_seed, exponential_from_uniform, CounterRng};
use quorum_stats::{converge, BatchMeans, ConvergeParams, Convergence};
use std::time::Duration;

/// Lanes per SoA stripe: object state lives in fixed-width parallel
/// arrays and the sampling pass runs branchless over the live lanes, so
/// the compiler can keep the SplitMix64 mixes and float converts in
/// vector registers.
pub const STRIPE: usize = 64;

/// Aggregate access tallies of a run (or of one shard of it).
///
/// Every field is an exact integer count, so merging shards is
/// associative/commutative and aggregates are bit-stable across any
/// partitioning of the object space — and any walk order within a
/// shard, which is what lets the stripe kernel interleave objects.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Objects walked.
    pub objects: u64,
    /// Accesses dispatched (reads + writes).
    pub accesses: u64,
    /// Reads submitted.
    pub reads_submitted: u64,
    /// Writes submitted.
    pub writes_submitted: u64,
    /// Reads granted a quorum.
    pub reads_granted: u64,
    /// Writes granted a quorum.
    pub writes_granted: u64,
    /// Accesses per object class, index-aligned with the catalog.
    pub class_accesses: Vec<u64>,
    /// Granted accesses per object class.
    pub class_granted: Vec<u64>,
}

impl ShardStats {
    /// An empty tally over `classes` object classes.
    pub fn new(classes: usize) -> Self {
        Self {
            class_accesses: vec![0; classes],
            class_granted: vec![0; classes],
            ..Self::default()
        }
    }

    /// Adds another tally into this one.
    ///
    /// # Panics
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ShardStats) {
        assert_eq!(self.class_accesses.len(), other.class_accesses.len());
        self.objects += other.objects;
        self.accesses += other.accesses;
        self.reads_submitted += other.reads_submitted;
        self.writes_submitted += other.writes_submitted;
        self.reads_granted += other.reads_granted;
        self.writes_granted += other.writes_granted;
        for (a, b) in self.class_accesses.iter_mut().zip(&other.class_accesses) {
            *a += b;
        }
        for (a, b) in self.class_granted.iter_mut().zip(&other.class_granted) {
            *a += b;
        }
    }

    /// Fraction of accesses granted (1.0 for an empty tally).
    pub fn availability(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            (self.reads_granted + self.writes_granted) as f64 / self.accesses as f64
        }
    }

    /// Publishes the tallies into an observability registry under the
    /// `shard.*` keys. Only partition-invariant totals are recorded, so
    /// manifests built from the snapshot are byte-identical across
    /// shard and thread counts.
    pub fn observe_into(&self, registry: &quorum_obs::Registry) {
        registry.add(quorum_obs::keys::SHARD_OBJECTS, self.objects);
        registry.add(quorum_obs::keys::SHARD_ACCESSES, self.accesses);
        registry.add(
            quorum_obs::keys::SHARD_READS_SUBMITTED,
            self.reads_submitted,
        );
        registry.add(
            quorum_obs::keys::SHARD_WRITES_SUBMITTED,
            self.writes_submitted,
        );
        registry.add(quorum_obs::keys::SHARD_READS_GRANTED, self.reads_granted);
        registry.add(quorum_obs::keys::SHARD_WRITES_GRANTED, self.writes_granted);
    }
}

/// Records one access outcome from its precomputed grant mask.
#[inline]
fn record(stats: &mut ShardStats, class: usize, mask: u8, is_read: bool) {
    let granted = if is_read {
        mask & READ_BIT != 0
    } else {
        mask & WRITE_BIT != 0
    };
    stats.accesses += 1;
    stats.class_accesses[class] += 1;
    if is_read {
        stats.reads_submitted += 1;
        stats.reads_granted += u64::from(granted);
    } else {
        stats.writes_submitted += 1;
        stats.writes_granted += u64::from(granted);
    }
    stats.class_granted[class] += u64::from(granted);
}

/// Checked-once walk context: every invariant the inner loops rely on
/// (positive finite rates and horizon, catalog/timeline agreement on
/// the assignment table) is validated here, so the per-access path
/// carries no asserts beyond debug builds.
struct PreparedWalk<'a> {
    catalog: &'a ObjectCatalog,
    timeline: &'a FailureTimeline,
    sites: usize,
    sites_f: f64,
    horizon: f64,
    master: u64,
}

impl<'a> PreparedWalk<'a> {
    /// Validates the run configuration once.
    ///
    /// # Panics
    /// Panics if the horizon is not positive/finite or exceeds the
    /// timeline's, if the timeline was built for a different assignment
    /// table, or if any class has a non-positive rate or an α outside
    /// `[0, 1]` (per-bucket αs are clamped into `(0, 1)` by
    /// construction, and per-object rates inherit positivity from the
    /// class base rate).
    fn new(engine: &ShardEngine<'a>) -> Self {
        let horizon = engine.horizon;
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "horizon must be positive and finite"
        );
        assert!(
            horizon <= engine.timeline.horizon(),
            "walk horizon exceeds the timeline's"
        );
        assert_eq!(
            engine.timeline.num_assignments(),
            engine.catalog.num_assignments(),
            "timeline was built for a different assignment table"
        );
        for class in engine.catalog.classes() {
            assert!(
                class.base_rate > 0.0 && class.base_rate.is_finite(),
                "class {} rate must be positive",
                class.name
            );
            assert!(
                (0.0..=1.0).contains(&class.alpha),
                "class {} alpha out of range",
                class.name
            );
        }
        let sites = engine.topology.num_sites();
        Self {
            catalog: engine.catalog,
            timeline: engine.timeline,
            sites,
            sites_f: sites as f64,
            horizon,
            master: engine.access_master(),
        }
    }

    /// Submitting site for a uniform draw `u ∈ [0, 1)`.
    #[inline]
    fn site_of(&self, u: f64) -> usize {
        ((u * self.sites_f) as usize).min(self.sites - 1)
    }

    /// Walks objects `[lo, hi)` in SoA stripes into `stats`.
    fn walk_range(&self, lo: u64, hi: u64, stats: &mut ShardStats) {
        let mut start = lo;
        while start < hi {
            let end = (start + STRIPE as u64).min(hi);
            self.walk_stripe(start, end, stats);
            start = end;
        }
    }

    /// Walks one stripe of up to [`STRIPE`] objects to the horizon.
    ///
    /// Per round, every live lane advances by exactly one access in
    /// three passes: a branchless batch-sampling pass (kind/site/gap
    /// uniforms straight from the lane's `(seed, counter)`), a resolve
    /// pass (bucketed epoch lookup + one grant-mask byte load + tally),
    /// and a compaction pass retiring lanes whose clock passed the
    /// horizon. Tallies are additive, so the lane interleaving leaves
    /// the aggregate identical to a one-object-at-a-time walk.
    fn walk_stripe(&self, lo: u64, hi: u64, stats: &mut ShardStats) {
        let width = (hi - lo) as usize;
        debug_assert!(0 < width && width <= STRIPE);
        let mut seed = [0u64; STRIPE];
        let mut ctr = [0u64; STRIPE];
        let mut t = [0.0f64; STRIPE];
        let mut inv_rate = [0.0f64; STRIPE];
        let mut alpha = [0.0f64; STRIPE];
        let mut class = [0u32; STRIPE];
        let mut assign = [0u32; STRIPE];
        let mut epoch = [0u32; STRIPE];
        let mut live = [0usize; STRIPE];
        let mut len = 0usize;
        for (i, o) in (lo..hi).enumerate() {
            let s = derive_seed(self.master, o);
            let inv = 1.0 / self.catalog.rate_of(o);
            seed[i] = s;
            inv_rate[i] = inv;
            alpha[i] = self.catalog.alpha_of(o);
            class[i] = self.catalog.class_of(o) as u32;
            assign[i] = self.catalog.assignment_of(o) as u32;
            t[i] = exponential_from_uniform(CounterRng::uniform_at(s, 0), inv);
            ctr[i] = 1;
            stats.objects += 1;
            if t[i] < self.horizon {
                live[len] = i;
                len += 1;
            }
        }
        let mut u_kind = [0.0f64; STRIPE];
        let mut u_site = [0.0f64; STRIPE];
        let mut gap = [0.0f64; STRIPE];
        while len > 0 {
            for (i, &l) in live[..len].iter().enumerate() {
                u_kind[i] = CounterRng::uniform_at(seed[l], ctr[l]);
                u_site[i] = CounterRng::uniform_at(seed[l], ctr[l] + 1);
                gap[i] = exponential_from_uniform(
                    CounterRng::uniform_at(seed[l], ctr[l] + 2),
                    inv_rate[l],
                );
                ctr[l] += 3;
            }
            for (i, &l) in live[..len].iter().enumerate() {
                let site = self.site_of(u_site[i]);
                let e = self.timeline.epoch_at(t[l], epoch[l] as usize);
                epoch[l] = e as u32;
                let mask = self.timeline.grant_mask(e, assign[l] as usize, site);
                record(stats, class[l] as usize, mask, u_kind[i] < alpha[l]);
                t[l] += gap[i];
            }
            let mut w = 0usize;
            for i in 0..len {
                let l = live[i];
                if t[l] < self.horizon {
                    live[w] = l;
                    w += 1;
                }
            }
            len = w;
        }
    }
}

/// The engine: topology + catalog + timeline + the run seed.
#[derive(Debug, Clone, Copy)]
pub struct ShardEngine<'a> {
    topology: &'a Topology,
    catalog: &'a ObjectCatalog,
    timeline: &'a FailureTimeline,
    horizon: f64,
    seed: u64,
}

impl<'a> ShardEngine<'a> {
    /// Binds an engine to a prepared run. `seed` must be the same master
    /// seed the timeline was built with (the timeline consumes stream 1,
    /// the access walks consume stream 2).
    pub fn new(
        topology: &'a Topology,
        catalog: &'a ObjectCatalog,
        timeline: &'a FailureTimeline,
        horizon: f64,
        seed: u64,
    ) -> Self {
        Self {
            topology,
            catalog,
            timeline,
            horizon,
            seed,
        }
    }

    /// Master seed of the per-object access RNG streams.
    fn access_master(&self) -> u64 {
        derive_seed(self.seed, 2)
    }

    /// Contiguous object range of shard `b` of `shards` (balanced to
    /// within one object).
    fn shard_range(&self, shards: u64, b: u64) -> (u64, u64) {
        let objects = self.catalog.num_objects();
        let base = objects / shards;
        let rem = objects % shards;
        let lo = b * base + b.min(rem);
        let hi = lo + base + u64::from(b < rem);
        (lo, hi)
    }

    /// Runs the batched engine: `shards` contiguous object ranges fanned
    /// over `threads` workers through [`quorum_stats::converge`], each
    /// walked by the SoA stripe kernel.
    ///
    /// With `shards >= 2`, every shard is dispatched and consumed
    /// (`min_batches == max_batches == shards`, with a vanishing
    /// half-width target so the orchestrator never discards a
    /// speculative batch), and shard tallies merge in shard-index order
    /// — the aggregate is therefore invariant to both the shard count
    /// and the thread count. A single shard walks inline (the batch
    /// orchestrator needs two batches for an interval), producing the
    /// same tally any other partitioning does.
    ///
    /// # Panics
    /// Panics unless `1 <= shards <= objects`.
    pub fn run_sharded(&self, shards: u64, threads: usize) -> (ShardStats, Convergence) {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            shards <= self.catalog.num_objects(),
            "more shards than objects"
        );
        let prepared = PreparedWalk::new(self);
        if shards == 1 {
            let mut total = ShardStats::new(self.catalog.num_classes());
            prepared.walk_range(0, self.catalog.num_objects(), &mut total);
            // The stopping-rule accumulator still carries the primary
            // statistic; timing fields are zero — nothing was fanned out,
            // so there is no thread-seconds denominator to report.
            let mut acc = BatchMeans::new(0.95, 1e-12, 2);
            acc.push_batch(total.accesses as f64);
            let conv = Convergence {
                acc,
                batches: 1,
                trace: Vec::new(),
                busy: Duration::ZERO,
                available_thread_seconds: 0.0,
                wall: Duration::ZERO,
            };
            return (total, conv);
        }
        let params = ConvergeParams {
            confidence: 0.95,
            // Shards are a partition of one run, not independent
            // replicates: convergence must never stop the fan-out
            // early, so the target is unreachably tight and
            // min == max pins the batch count to the shard count.
            target_half_width: 1e-12,
            min_batches: shards,
            max_batches: shards,
            threads,
        };
        let mut total = ShardStats::new(self.catalog.num_classes());
        let conv = converge(
            &params,
            |b| {
                let (lo, hi) = self.shard_range(shards, b);
                let mut s = ShardStats::new(self.catalog.num_classes());
                prepared.walk_range(lo, hi, &mut s);
                s
            },
            |s| s.accesses as f64,
            |_, s, _| total.merge(&s),
        );
        (total, conv)
    }

    /// Runs the naive reference engine: every object's next access lives
    /// in one binary-heap future-event list, popped one at a time.
    ///
    /// Consumes each per-object counter stream at exactly the positions
    /// [`Self::run_sharded`] does, so the returned tally is equal — the
    /// difference is purely the `O(log N)`-per-access event-list traffic
    /// this formulation pays.
    pub fn run_naive(&self) -> ShardStats {
        let prepared = PreparedWalk::new(self);
        let objects = self.catalog.num_objects() as usize;
        let mut queue: quorum_des::EventQueue<u64> = quorum_des::EventQueue::new();
        let mut seeds = Vec::with_capacity(objects);
        let mut ctrs = vec![1u64; objects];
        let mut inv_rates = Vec::with_capacity(objects);
        let mut alphas = Vec::with_capacity(objects);
        let mut classes = Vec::with_capacity(objects);
        let mut assigns = Vec::with_capacity(objects);
        for o in 0..objects as u64 {
            let s = derive_seed(prepared.master, o);
            let inv = 1.0 / self.catalog.rate_of(o);
            let t = exponential_from_uniform(CounterRng::uniform_at(s, 0), inv);
            if t < self.horizon {
                queue.schedule(quorum_des::SimTime::new(t), o);
            }
            seeds.push(s);
            inv_rates.push(inv);
            alphas.push(self.catalog.alpha_of(o));
            classes.push(self.catalog.class_of(o) as u32);
            assigns.push(self.catalog.assignment_of(o) as u32);
        }
        let mut stats = ShardStats::new(self.catalog.num_classes());
        stats.objects = objects as u64;
        // Pops arrive in global time order, so one epoch hint serves
        // every object.
        let mut epoch = 0usize;
        while let Some((t, o)) = queue.pop() {
            let i = o as usize;
            let u_kind = CounterRng::uniform_at(seeds[i], ctrs[i]);
            let u_site = CounterRng::uniform_at(seeds[i], ctrs[i] + 1);
            let gap = exponential_from_uniform(
                CounterRng::uniform_at(seeds[i], ctrs[i] + 2),
                inv_rates[i],
            );
            ctrs[i] += 3;
            epoch = self.timeline.epoch_at(t.as_f64(), epoch);
            let mask =
                self.timeline
                    .grant_mask(epoch, assigns[i] as usize, prepared.site_of(u_site));
            record(&mut stats, classes[i] as usize, mask, u_kind < alphas[i]);
            let next = t.as_f64() + gap;
            if next < self.horizon {
                queue.schedule(quorum_des::SimTime::new(next), o);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_des::SimParams;

    struct Fixture {
        topology: Topology,
        catalog: ObjectCatalog,
        timeline: FailureTimeline,
        horizon: f64,
        seed: u64,
    }

    fn fixture(objects: u64, horizon: f64, seed: u64) -> Fixture {
        let topology = Topology::ring_with_chords(13, 3);
        let catalog = ObjectCatalog::paper_mix(13, objects);
        let timeline =
            FailureTimeline::build(&topology, &catalog, &SimParams::quick(), horizon, seed);
        Fixture {
            topology,
            catalog,
            timeline,
            horizon,
            seed,
        }
    }

    fn optimized_fixture(objects: u64, horizon: f64, seed: u64) -> Fixture {
        let topology = Topology::ring_with_chords(13, 3);
        let density = quorum_core::analytic::ring_density(13, 0.96, 0.96);
        let catalog =
            ObjectCatalog::paper_mix(13, objects).with_optimized_assignments(&density, 5, 0.2);
        let timeline =
            FailureTimeline::build(&topology, &catalog, &SimParams::quick(), horizon, seed);
        Fixture {
            topology,
            catalog,
            timeline,
            horizon,
            seed,
        }
    }

    impl Fixture {
        fn engine(&self) -> ShardEngine<'_> {
            ShardEngine::new(
                &self.topology,
                &self.catalog,
                &self.timeline,
                self.horizon,
                self.seed,
            )
        }
    }

    #[test]
    fn batched_equals_naive_exactly() {
        let f = fixture(100, 80.0, 7);
        let engine = f.engine();
        let (batched, conv) = engine.run_sharded(4, 1);
        let naive = engine.run_naive();
        assert_eq!(batched, naive);
        assert_eq!(conv.batches, 4);
        assert!(batched.accesses > 1000, "80 time units x 100 objects");
        assert_eq!(
            batched.reads_submitted + batched.writes_submitted,
            batched.accesses
        );
    }

    #[test]
    fn aggregate_is_invariant_to_shard_partitioning() {
        let f = fixture(97, 60.0, 13);
        let engine = f.engine();
        let (a, _) = engine.run_sharded(1, 1);
        let (b, _) = engine.run_sharded(2, 1);
        let (c, _) = engine.run_sharded(5, 1);
        let (d, _) = engine.run_sharded(97, 1);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(c, d);
    }

    #[test]
    fn aggregate_is_invariant_to_thread_count() {
        let f = fixture(64, 60.0, 29);
        let engine = f.engine();
        let (a, _) = engine.run_sharded(8, 1);
        let (b, _) = engine.run_sharded(8, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn single_shard_walks_inline() {
        let f = fixture(10, 30.0, 1);
        let (s, conv) = f.engine().run_sharded(1, 4);
        assert_eq!(s.objects, 10);
        assert!(s.accesses > 0);
        assert_eq!(s, f.engine().run_naive());
        assert_eq!(conv.batches, 1);
        assert_eq!(conv.wall, Duration::ZERO, "no fan-out, no timing");
    }

    #[test]
    fn stripe_boundaries_do_not_change_tallies() {
        // Object counts straddling multiples of the stripe width all
        // agree with the naive engine (partial trailing stripes).
        for objects in [STRIPE as u64 - 1, STRIPE as u64, STRIPE as u64 + 1, 130] {
            let f = fixture(objects, 25.0, 19);
            let engine = f.engine();
            let (batched, _) = engine.run_sharded(3.min(objects), 1);
            assert_eq!(batched, engine.run_naive(), "objects={objects}");
        }
    }

    #[test]
    fn per_object_assignments_keep_engines_equal() {
        let f = optimized_fixture(120, 60.0, 23);
        assert!(f.catalog.num_assignments() > f.catalog.num_classes());
        let engine = f.engine();
        let (batched, _) = engine.run_sharded(5, 2);
        assert_eq!(batched, engine.run_naive());
        assert!(batched.accesses > 1000);
    }

    #[test]
    fn long_run_sees_denials() {
        let f = fixture(40, 2000.0, 7);
        let (s, _) = f.engine().run_sharded(4, 2);
        assert!(s.reads_granted < s.reads_submitted || s.writes_granted < s.writes_submitted);
        assert!(s.availability() < 1.0);
        assert!(
            s.availability() > 0.5,
            "96% reliability keeps availability high"
        );
    }

    #[test]
    fn every_class_sees_traffic() {
        let f = fixture(200, 40.0, 3);
        let (s, _) = f.engine().run_sharded(4, 1);
        assert!(
            s.class_accesses.iter().all(|&n| n > 0),
            "{:?}",
            s.class_accesses
        );
        assert_eq!(s.class_accesses.iter().sum::<u64>(), s.accesses);
    }

    #[test]
    fn stats_merge_is_exact() {
        let mut a = ShardStats::new(2);
        a.accesses = 3;
        a.class_accesses[1] = 3;
        let mut b = ShardStats::new(2);
        b.accesses = 4;
        b.class_accesses[0] = 4;
        a.merge(&b);
        assert_eq!(a.accesses, 7);
        assert_eq!(a.class_accesses, vec![4, 3]);
    }

    #[test]
    fn observe_publishes_partition_invariant_totals() {
        let f = fixture(32, 30.0, 5);
        let (s, _) = f.engine().run_sharded(4, 1);
        let reg = quorum_obs::Registry::new();
        s.observe_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(quorum_obs::keys::SHARD_OBJECTS), 32);
        assert_eq!(snap.counter(quorum_obs::keys::SHARD_ACCESSES), s.accesses);
        assert!(snap.gauges.is_empty(), "engine publishes no gauges");
    }

    #[test]
    #[should_panic(expected = "more shards than objects")]
    fn oversharding_rejected() {
        let f = fixture(10, 1.0, 1);
        f.engine().run_sharded(11, 1);
    }

    #[test]
    #[should_panic(expected = "different assignment table")]
    fn assignment_table_mismatch_rejected() {
        let f = fixture(10, 1.0, 1);
        let density = quorum_core::analytic::ring_density(13, 0.96, 0.96);
        let other = ObjectCatalog::paper_mix(13, 10).with_optimized_assignments(&density, 5, 0.2);
        ShardEngine::new(&f.topology, &other, &f.timeline, f.horizon, f.seed).run_sharded(2, 1);
    }
}
