//! The throughput engine: batched sharded walks vs the naive heap.
//!
//! Both engines simulate the identical system — every object's Poisson
//! access walk over the shared [`FailureTimeline`] — and consume each
//! object's RNG stream in the identical order (gap, then kind, then
//! site, repeat), so their aggregate statistics are **equal**, not
//! merely statistically indistinguishable:
//!
//! * [`ShardEngine::run_sharded`] partitions the object space into
//!   contiguous shards and fans them through [`quorum_stats::converge`].
//!   Each shard walks its objects in one tight loop — no event queue at
//!   all — and returns an all-`u64` [`ShardStats`] whose merge is
//!   associative and commutative, making the aggregate invariant to
//!   shard partitioning *and* thread count.
//! * [`ShardEngine::run_naive`] is the classical formulation: one
//!   binary-heap future-event list holding every object's next access,
//!   popped one access at a time (`O(log N)` per access with `N` heap
//!   entries). It exists as the correctness pin and as the benchmark
//!   baseline the batched path is measured against.

use crate::catalog::ObjectCatalog;
use crate::timeline::FailureTimeline;
use quorum_core::protocol::Access;
use quorum_graph::Topology;
use quorum_stats::rng::{derive_seed, exponential, rng_from_seed};
use quorum_stats::{converge, ConvergeParams, Convergence};
use rand::Rng;

/// Aggregate access tallies of a run (or of one shard of it).
///
/// Every field is an exact integer count, so merging shards is
/// associative/commutative and aggregates are bit-stable across any
/// partitioning of the object space.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Objects walked.
    pub objects: u64,
    /// Accesses dispatched (reads + writes).
    pub accesses: u64,
    /// Reads submitted.
    pub reads_submitted: u64,
    /// Writes submitted.
    pub writes_submitted: u64,
    /// Reads granted a quorum.
    pub reads_granted: u64,
    /// Writes granted a quorum.
    pub writes_granted: u64,
    /// Accesses per object class, index-aligned with the catalog.
    pub class_accesses: Vec<u64>,
    /// Granted accesses per object class.
    pub class_granted: Vec<u64>,
}

impl ShardStats {
    /// An empty tally over `classes` object classes.
    pub fn new(classes: usize) -> Self {
        Self {
            class_accesses: vec![0; classes],
            class_granted: vec![0; classes],
            ..Self::default()
        }
    }

    /// Adds another tally into this one.
    ///
    /// # Panics
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ShardStats) {
        assert_eq!(self.class_accesses.len(), other.class_accesses.len());
        self.objects += other.objects;
        self.accesses += other.accesses;
        self.reads_submitted += other.reads_submitted;
        self.writes_submitted += other.writes_submitted;
        self.reads_granted += other.reads_granted;
        self.writes_granted += other.writes_granted;
        for (a, b) in self.class_accesses.iter_mut().zip(&other.class_accesses) {
            *a += b;
        }
        for (a, b) in self.class_granted.iter_mut().zip(&other.class_granted) {
            *a += b;
        }
    }

    /// Fraction of accesses granted (1.0 for an empty tally).
    pub fn availability(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            (self.reads_granted + self.writes_granted) as f64 / self.accesses as f64
        }
    }

    /// Publishes the tallies into an observability registry under the
    /// `shard.*` keys. Only partition-invariant totals are recorded, so
    /// manifests built from the snapshot are byte-identical across
    /// shard and thread counts.
    pub fn observe_into(&self, registry: &quorum_obs::Registry) {
        registry.add(quorum_obs::keys::SHARD_OBJECTS, self.objects);
        registry.add(quorum_obs::keys::SHARD_ACCESSES, self.accesses);
        registry.add(
            quorum_obs::keys::SHARD_READS_SUBMITTED,
            self.reads_submitted,
        );
        registry.add(
            quorum_obs::keys::SHARD_WRITES_SUBMITTED,
            self.writes_submitted,
        );
        registry.add(quorum_obs::keys::SHARD_READS_GRANTED, self.reads_granted);
        registry.add(quorum_obs::keys::SHARD_WRITES_GRANTED, self.writes_granted);
    }
}

/// The engine: topology + catalog + timeline + the run seed.
#[derive(Debug, Clone, Copy)]
pub struct ShardEngine<'a> {
    topology: &'a Topology,
    catalog: &'a ObjectCatalog,
    timeline: &'a FailureTimeline,
    horizon: f64,
    seed: u64,
}

impl<'a> ShardEngine<'a> {
    /// Binds an engine to a prepared run. `seed` must be the same master
    /// seed the timeline was built with (the timeline consumes stream 1,
    /// the access walks consume stream 2).
    pub fn new(
        topology: &'a Topology,
        catalog: &'a ObjectCatalog,
        timeline: &'a FailureTimeline,
        horizon: f64,
        seed: u64,
    ) -> Self {
        Self {
            topology,
            catalog,
            timeline,
            horizon,
            seed,
        }
    }

    /// Master seed of the per-object access RNG streams.
    fn access_master(&self) -> u64 {
        derive_seed(self.seed, 2)
    }

    /// Walks one object's full access history into `stats`.
    ///
    /// Draw order per access — gap, then read/write kind, then
    /// submitting site — is the contract both engines share; the naive
    /// engine consumes the same per-object stream in the same order, so
    /// the tallies agree exactly.
    fn walk_object(&self, object: u64, stats: &mut ShardStats) {
        let n = self.topology.num_sites();
        let class = self.catalog.class_of(object);
        let alpha = self.catalog.class(class).alpha;
        let rate = self.catalog.rate_of(object);
        let ends = self.timeline.epoch_ends();
        let mut rng = rng_from_seed(derive_seed(self.access_master(), object));
        let mut epoch = 0usize;
        let mut t = exponential(&mut rng, rate);
        stats.objects += 1;
        while t < self.horizon {
            let is_read = rng.random::<f64>() < alpha;
            let site = ((rng.random::<f64>() * n as f64) as usize).min(n - 1);
            while ends[epoch] <= t {
                epoch += 1;
            }
            self.tally(stats, class, epoch, site, is_read);
            t += exponential(&mut rng, rate);
        }
    }

    /// Records one access outcome.
    #[inline]
    fn tally(
        &self,
        stats: &mut ShardStats,
        class: usize,
        epoch: usize,
        site: usize,
        is_read: bool,
    ) {
        let kind = if is_read { Access::Read } else { Access::Write };
        let granted = self.timeline.granted(epoch, class, site, kind);
        stats.accesses += 1;
        stats.class_accesses[class] += 1;
        if is_read {
            stats.reads_submitted += 1;
            stats.reads_granted += u64::from(granted);
        } else {
            stats.writes_submitted += 1;
            stats.writes_granted += u64::from(granted);
        }
        stats.class_granted[class] += u64::from(granted);
    }

    /// Contiguous object range of shard `b` of `shards` (balanced to
    /// within one object).
    fn shard_range(&self, shards: u64, b: u64) -> (u64, u64) {
        let objects = self.catalog.num_objects();
        let base = objects / shards;
        let rem = objects % shards;
        let lo = b * base + b.min(rem);
        let hi = lo + base + u64::from(b < rem);
        (lo, hi)
    }

    /// Runs the batched engine: `shards` contiguous object ranges fanned
    /// over `threads` workers through [`quorum_stats::converge`].
    ///
    /// Every shard is dispatched and consumed (`min_batches ==
    /// max_batches == shards`, with a vanishing half-width target so the
    /// orchestrator never discards a speculative batch), and shard
    /// tallies merge in shard-index order — the aggregate is therefore
    /// invariant to both the shard count and the thread count.
    ///
    /// # Panics
    /// Panics unless `2 <= shards <= objects`.
    pub fn run_sharded(&self, shards: u64, threads: usize) -> (ShardStats, Convergence) {
        assert!(
            shards >= 2,
            "the batch orchestrator needs at least 2 shards"
        );
        assert!(
            shards <= self.catalog.num_objects(),
            "more shards than objects"
        );
        let params = ConvergeParams {
            confidence: 0.95,
            // Shards are a partition of one run, not independent
            // replicates: convergence must never stop the fan-out
            // early, so the target is unreachably tight and
            // min == max pins the batch count to the shard count.
            target_half_width: 1e-12,
            min_batches: shards,
            max_batches: shards,
            threads,
        };
        let mut total = ShardStats::new(self.catalog.num_classes());
        let conv = converge(
            &params,
            |b| {
                let (lo, hi) = self.shard_range(shards, b);
                let mut s = ShardStats::new(self.catalog.num_classes());
                for o in lo..hi {
                    self.walk_object(o, &mut s);
                }
                s
            },
            |s| s.accesses as f64,
            |_, s, _| total.merge(&s),
        );
        (total, conv)
    }

    /// Runs the naive reference engine: every object's next access lives
    /// in one binary-heap future-event list, popped one at a time.
    ///
    /// Consumes each per-object RNG stream in exactly the order
    /// [`Self::run_sharded`] does, so the returned tally is equal — the
    /// difference is purely the `O(log N)`-per-access event-list traffic
    /// this formulation pays.
    pub fn run_naive(&self) -> ShardStats {
        let objects = self.catalog.num_objects();
        let master = self.access_master();
        let mut queue: quorum_des::EventQueue<u64> = quorum_des::EventQueue::new();
        let mut rngs = Vec::with_capacity(objects as usize);
        let mut rates = Vec::with_capacity(objects as usize);
        for o in 0..objects {
            let mut rng = rng_from_seed(derive_seed(master, o));
            let rate = self.catalog.rate_of(o);
            let t = exponential(&mut rng, rate);
            if t < self.horizon {
                queue.schedule(quorum_des::SimTime::new(t), o);
            }
            rngs.push(rng);
            rates.push(rate);
        }
        let n = self.topology.num_sites();
        let ends = self.timeline.epoch_ends();
        let mut stats = ShardStats::new(self.catalog.num_classes());
        stats.objects = objects;
        let mut epoch = 0usize;
        while let Some((t, o)) = queue.pop() {
            let rng = &mut rngs[o as usize];
            let class = self.catalog.class_of(o);
            let is_read = rng.random::<f64>() < self.catalog.class(class).alpha;
            let site = ((rng.random::<f64>() * n as f64) as usize).min(n - 1);
            // Pops arrive in global time order, so one cursor serves
            // every object.
            while ends[epoch] <= t.as_f64() {
                epoch += 1;
            }
            self.tally(&mut stats, class, epoch, site, is_read);
            let next = t.as_f64() + exponential(rng, rates[o as usize]);
            if next < self.horizon {
                queue.schedule(quorum_des::SimTime::new(next), o);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_des::SimParams;

    struct Fixture {
        topology: Topology,
        catalog: ObjectCatalog,
        timeline: FailureTimeline,
        horizon: f64,
        seed: u64,
    }

    fn fixture(objects: u64, horizon: f64, seed: u64) -> Fixture {
        let topology = Topology::ring_with_chords(13, 3);
        let catalog = ObjectCatalog::paper_mix(13, objects);
        let timeline =
            FailureTimeline::build(&topology, &catalog, &SimParams::quick(), horizon, seed);
        Fixture {
            topology,
            catalog,
            timeline,
            horizon,
            seed,
        }
    }

    impl Fixture {
        fn engine(&self) -> ShardEngine<'_> {
            ShardEngine::new(
                &self.topology,
                &self.catalog,
                &self.timeline,
                self.horizon,
                self.seed,
            )
        }
    }

    #[test]
    fn batched_equals_naive_exactly() {
        let f = fixture(100, 80.0, 7);
        let engine = f.engine();
        let (batched, conv) = engine.run_sharded(4, 1);
        let naive = engine.run_naive();
        assert_eq!(batched, naive);
        assert_eq!(conv.batches, 4);
        assert!(batched.accesses > 1000, "80 time units x 100 objects");
        assert_eq!(
            batched.reads_submitted + batched.writes_submitted,
            batched.accesses
        );
    }

    #[test]
    fn aggregate_is_invariant_to_shard_partitioning() {
        let f = fixture(97, 60.0, 13);
        let engine = f.engine();
        let (a, _) = engine.run_sharded(2, 1);
        let (b, _) = engine.run_sharded(5, 1);
        let (c, _) = engine.run_sharded(97, 1);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn aggregate_is_invariant_to_thread_count() {
        let f = fixture(64, 60.0, 29);
        let engine = f.engine();
        let (a, _) = engine.run_sharded(8, 1);
        let (b, _) = engine.run_sharded(8, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn long_run_sees_denials() {
        let f = fixture(40, 2000.0, 7);
        let (s, _) = f.engine().run_sharded(4, 2);
        assert!(s.reads_granted < s.reads_submitted || s.writes_granted < s.writes_submitted);
        assert!(s.availability() < 1.0);
        assert!(
            s.availability() > 0.5,
            "96% reliability keeps availability high"
        );
    }

    #[test]
    fn every_class_sees_traffic() {
        let f = fixture(200, 40.0, 3);
        let (s, _) = f.engine().run_sharded(4, 1);
        assert!(
            s.class_accesses.iter().all(|&n| n > 0),
            "{:?}",
            s.class_accesses
        );
        assert_eq!(s.class_accesses.iter().sum::<u64>(), s.accesses);
    }

    #[test]
    fn stats_merge_is_exact() {
        let mut a = ShardStats::new(2);
        a.accesses = 3;
        a.class_accesses[1] = 3;
        let mut b = ShardStats::new(2);
        b.accesses = 4;
        b.class_accesses[0] = 4;
        a.merge(&b);
        assert_eq!(a.accesses, 7);
        assert_eq!(a.class_accesses, vec![4, 3]);
    }

    #[test]
    fn observe_publishes_partition_invariant_totals() {
        let f = fixture(32, 30.0, 5);
        let (s, _) = f.engine().run_sharded(4, 1);
        let reg = quorum_obs::Registry::new();
        s.observe_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(quorum_obs::keys::SHARD_OBJECTS), 32);
        assert_eq!(snap.counter(quorum_obs::keys::SHARD_ACCESSES), s.accesses);
        assert!(snap.gauges.is_empty(), "engine publishes no gauges");
    }

    #[test]
    #[should_panic(expected = "at least 2 shards")]
    fn single_shard_rejected() {
        let f = fixture(10, 1.0, 1);
        f.engine().run_sharded(1, 1);
    }
}
