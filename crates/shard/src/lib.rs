//! Million-object sharded throughput engine.
//!
//! The paper's simulator (§5.2) studies **one** replicated object per run:
//! one vote assignment, one read ratio, one access process. Real
//! distributed databases assign quorums per object — the optimization the
//! paper motivates is only worth running when a deployment manages many
//! objects with heterogeneous read/write mixes over a *shared* network.
//! This crate simulates that regime: `N` independent objects, each with
//! its own [`quorum_core::VoteAssignment`], read ratio `α`, and Poisson
//! access rate, all sharing one topology's failure/repair sample path.
//!
//! The engine gets its throughput from three structural facts:
//!
//! 1. **Failure events are object-independent.** The site/link renewal
//!    processes (§5.2) don't depend on the access workload, so the
//!    network's connectivity history can be materialized *once* per run
//!    as a [`FailureTimeline`]: a sequence of connectivity epochs, each
//!    carrying a per-assignment, per-site grant bitmask precomputed
//!    through the shared incremental component kernel, plus a bucket
//!    index making epoch lookup O(1) amortized.
//! 2. **Accesses never interact.** Quorum checks are instantaneous reads
//!    of the current partition structure, so each object's access walk
//!    can be generated in one batched pass — no global event queue, no
//!    `O(log N)` heap traffic per access. The walk kernel exploits this
//!    with structure-of-arrays stripes of [`engine::STRIPE`] objects,
//!    batch-sampling every live lane's next access per round.
//! 3. **Per-object counter RNG streams.** Every object draws from the
//!    [`quorum_stats::rng::CounterRng`] stream
//!    `derive_seed(access_master, object_id)` — draw `k` is a pure
//!    function of the seed and `k` — so results are invariant to shard
//!    partitioning, thread count, and walk order within a stripe, and
//!    bit-identical to the naive engine that interleaves all objects
//!    through one binary heap.
//!
//! On top of the classes, [`ObjectCatalog::with_optimized_assignments`]
//! expands the population to **per-object** quorum assignments chosen by
//! the paper's optimizer ([`quorum_core::optimal`]) per read-ratio
//! bucket; the timeline carries one grant row per distinct assignment.
//!
//! [`engine::ShardEngine::run_sharded`] fans contiguous object shards
//! through [`quorum_stats::converge`]; [`engine::ShardEngine::run_naive`]
//! is the reference implementation the equality tests pin against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod engine;
pub mod timeline;

pub use catalog::{AssignmentProfile, ObjectCatalog, ObjectClass};
pub use engine::{ShardEngine, ShardStats, STRIPE};
pub use timeline::FailureTimeline;
