//! Shared failure timeline: one connectivity history for all objects.
//!
//! The §5.2 site/link renewal processes are independent of the access
//! workload, so a run over `N` objects needs the network sample path
//! exactly once. [`FailureTimeline::build`] replays the failure stream
//! through the calendar event queue and the incremental component
//! kernel, cutting simulated time into **epochs** (maximal intervals
//! with constant partition structure) and precomputing, per epoch, a
//! per-assignment × per-site grant bitmask: "would a read (bit 0) /
//! write (bit 1) submitted at site `s` for an object under assignment
//! profile `a` be granted?". Profiles sharing a vote table share the
//! per-component vote sums, so adding optimizer-expanded per-object
//! assignments costs one mask row per *distinct* spec, not per object.
//!
//! After that, serving a quorum check for any access is one byte load —
//! the million-object access loops never touch the graph code. Epoch
//! membership itself is served by a **bucket index** over `[0,
//! horizon)`: `bucket_floor[b]` holds the first epoch overlapping
//! bucket `b`, so [`FailureTimeline::epoch_at`] is a bounded scan of
//! the (≈ 0.25 with 4× oversampling) epochs per bucket instead of a
//! walk over every epoch boundary since the object's previous access.

use crate::catalog::ObjectCatalog;
use quorum_core::protocol::Access;
use quorum_des::{CalendarQueue, SimParams};
use quorum_graph::{ComponentCache, ComponentView, NetworkState, Topology, TopologyEvent};
use quorum_replica::FailureProcesses;
use quorum_stats::rng::{derive_seed, rng_from_seed};

/// Read-granted bit in a grant mask.
pub const READ_BIT: u8 = 1;
/// Write-granted bit in a grant mask.
pub const WRITE_BIT: u8 = 2;

/// Epoch-index buckets per epoch (oversampling factor of the bucket
/// index; higher = shorter scans, more memory).
const BUCKETS_PER_EPOCH: usize = 4;

/// One failure/repair event in the timeline replay.
enum TimelineEvent {
    Site(usize),
    Link(usize),
}

/// The materialized connectivity history of one run.
#[derive(Debug, Clone)]
pub struct FailureTimeline {
    /// Exclusive end time of each epoch; the last entry is the horizon.
    epoch_end: Vec<f64>,
    /// Grant masks, indexed `[(epoch * assignments + assignment) * sites
    /// + site]`.
    grants: Vec<u8>,
    sites: usize,
    /// Assignment profiles per epoch (the catalog's `num_assignments`).
    assignments: usize,
    horizon: f64,
    /// First epoch overlapping each time bucket of `[0, horizon)`.
    bucket_floor: Vec<u32>,
    /// Buckets per unit time (`bucket_floor.len() / horizon`).
    bucket_scale: f64,
    site_transitions: u64,
    link_transitions: u64,
}

impl FailureTimeline {
    /// Replays the failure stream for `[0, horizon)` and precomputes the
    /// per-epoch grant tables and the epoch bucket index.
    ///
    /// The failure RNG stream is `derive_seed(seed, 1)` — the same
    /// master/stream split the per-object access walks use (they draw
    /// from stream 2), so one `seed` fixes the whole run. The failure
    /// replay keeps `StdRng`: it runs once per run, off the access hot
    /// path the counter-based streams exist for.
    ///
    /// # Panics
    /// Panics if `horizon` is not positive and finite.
    pub fn build(
        topology: &Topology,
        catalog: &ObjectCatalog,
        params: &SimParams,
        horizon: f64,
        seed: u64,
    ) -> Self {
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "horizon must be positive and finite"
        );
        let n = topology.num_sites();
        let m = topology.num_links();
        let uniform = vec![1u64; n];
        let mut rng = rng_from_seed(derive_seed(seed, 1));
        let mut procs = FailureProcesses::new(params, n, m, None, None);
        let mut queue: CalendarQueue<TimelineEvent> = CalendarQueue::new();
        procs.schedule_initial(
            &mut queue,
            &mut rng,
            TimelineEvent::Site,
            TimelineEvent::Link,
        );
        let mut state = NetworkState::all_up(topology);
        let mut cache = ComponentCache::incremental();

        let mut out = Self {
            epoch_end: Vec::new(),
            grants: Vec::new(),
            sites: n,
            assignments: catalog.num_assignments(),
            horizon,
            bucket_floor: Vec::new(),
            bucket_scale: 0.0,
            site_transitions: 0,
            link_transitions: 0,
        };

        loop {
            let t = match queue.peek_time() {
                Some(t) if t.as_f64() < horizon => t,
                _ => break,
            };
            // The epoch ending at `t` ran under the current state.
            out.push_epoch(
                t.as_f64(),
                catalog,
                &state,
                cache.view(topology, &state, &uniform),
            );
            // Apply every event at exactly `t` before cutting the next
            // epoch, so simultaneous transitions produce one epoch, not
            // a stack of zero-length ones.
            while queue.peek_time().map(SimTimeBits::bits) == Some(t.bits()) {
                let (_, ev) = queue.pop().expect("peeked");
                match ev {
                    TimelineEvent::Site(i) => {
                        out.site_transitions += 1;
                        let (up, gap) = procs.site_transition(i, &mut rng);
                        if state.set_site(i, up) {
                            cache.apply_event(
                                topology,
                                &state,
                                &uniform,
                                TopologyEvent::Site { site: i, up },
                            );
                        }
                        queue.schedule_in(gap, TimelineEvent::Site(i));
                    }
                    TimelineEvent::Link(i) => {
                        out.link_transitions += 1;
                        let (up, gap) = procs.link_transition(i, &mut rng);
                        if state.set_link(i, up) {
                            cache.apply_event(
                                topology,
                                &state,
                                &uniform,
                                TopologyEvent::Link { link: i, up },
                            );
                        }
                        queue.schedule_in(gap, TimelineEvent::Link(i));
                    }
                }
            }
        }
        // Final epoch: from the last transition to the horizon.
        out.push_epoch(
            horizon,
            catalog,
            &state,
            cache.view(topology, &state, &uniform),
        );
        out.build_bucket_index();
        out
    }

    /// Records the grant table of the epoch ending at `end`.
    fn push_epoch(
        &mut self,
        end: f64,
        catalog: &ObjectCatalog,
        state: &NetworkState,
        view: &ComponentView,
    ) {
        self.epoch_end.push(end);
        let comps = view.num_components();
        let tables = catalog.vote_tables();
        // Per-component vote sums, once per distinct vote table:
        // `comp_votes[table * comps + component]`.
        let mut comp_votes = vec![0u64; tables.len() * comps];
        for s in 0..self.sites {
            let c = view.component_of(s);
            if c != ComponentView::DOWN {
                for (ti, table) in tables.iter().enumerate() {
                    comp_votes[ti * comps + c as usize] += table.votes_of(s);
                }
            }
        }
        for profile in catalog.profiles() {
            let votes = &comp_votes[profile.votes_key * comps..][..comps];
            for s in 0..self.sites {
                let c = view.component_of(s);
                let mask = if c == ComponentView::DOWN || !state.site_up(s) {
                    0
                } else {
                    let v = votes[c as usize];
                    u8::from(profile.spec.read_granted(v))
                        | (u8::from(profile.spec.write_granted(v)) << 1)
                };
                self.grants.push(mask);
            }
        }
    }

    /// Builds the epoch bucket index: `bucket_floor[b]` = the first
    /// epoch whose end lies past bucket `b`'s start, i.e. the epoch any
    /// time in the bucket can belong to at the earliest.
    fn build_bucket_index(&mut self) {
        let buckets = (self.epoch_end.len() * BUCKETS_PER_EPOCH).max(1);
        self.bucket_scale = buckets as f64 / self.horizon;
        self.bucket_floor = Vec::with_capacity(buckets);
        let mut e = 0usize;
        for b in 0..buckets {
            let start = b as f64 / self.bucket_scale;
            // epoch_end is strictly increasing and ends at `horizon`,
            // which every bucket start is strictly below.
            while self.epoch_end[e] <= start {
                e += 1;
            }
            self.bucket_floor.push(e as u32);
        }
    }

    /// The epoch containing time `t ∈ [0, horizon)`.
    ///
    /// `hint` is a lower bound on the answer (pass the object's previous
    /// epoch, or 0); the scan starts at the larger of the hint and the
    /// bucket floor, so lookups cost O(epochs-per-bucket), not
    /// O(epochs-since-last-access).
    #[inline]
    pub fn epoch_at(&self, t: f64, hint: usize) -> usize {
        debug_assert!(t >= 0.0 && t < self.horizon);
        let b = ((t * self.bucket_scale) as usize).min(self.bucket_floor.len() - 1);
        let mut e = (self.bucket_floor[b] as usize).max(hint);
        while self.epoch_end[e] <= t {
            e += 1;
        }
        e
    }

    /// Number of connectivity epochs (≥ 1; at least the all-up one).
    pub fn num_epochs(&self) -> usize {
        self.epoch_end.len()
    }

    /// Exclusive end times of the epochs (last entry = horizon).
    pub fn epoch_ends(&self) -> &[f64] {
        &self.epoch_end
    }

    /// Assignment profiles per epoch (grant rows).
    pub fn num_assignments(&self) -> usize {
        self.assignments
    }

    /// The run horizon the timeline was built for.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Raw grant mask for (`epoch`, `assignment`, `site`):
    /// [`READ_BIT`] | [`WRITE_BIT`].
    #[inline]
    pub fn grant_mask(&self, epoch: usize, assignment: usize, site: usize) -> u8 {
        self.grants[(epoch * self.assignments + assignment) * self.sites + site]
    }

    /// Whether an access of `kind` submitted at `site` during `epoch` is
    /// granted for an object under assignment profile `assignment`.
    #[inline]
    pub fn granted(&self, epoch: usize, assignment: usize, site: usize, kind: Access) -> bool {
        let mask = self.grant_mask(epoch, assignment, site);
        match kind {
            Access::Read => mask & READ_BIT != 0,
            Access::Write => mask & WRITE_BIT != 0,
        }
    }

    /// Site up/down transitions applied before the horizon.
    pub fn site_transitions(&self) -> u64 {
        self.site_transitions
    }

    /// Link up/down transitions applied before the horizon.
    pub fn link_transitions(&self) -> u64 {
        self.link_transitions
    }

    /// Publishes timeline totals into an observability registry.
    pub fn observe_into(&self, registry: &quorum_obs::Registry) {
        registry.add(
            quorum_obs::keys::DES_SITE_TRANSITIONS,
            self.site_transitions,
        );
        registry.add(
            quorum_obs::keys::DES_LINK_TRANSITIONS,
            self.link_transitions,
        );
        registry.add(quorum_obs::keys::SHARD_EPOCHS, self.num_epochs() as u64);
        registry.add(quorum_obs::keys::SHARD_ASSIGNMENTS, self.assignments as u64);
    }
}

/// Total-order bit view of a [`quorum_des::SimTime`] for exact
/// same-timestamp grouping without a float `==` (timestamps compared
/// here are copies of one another, so bit equality is the intent).
trait SimTimeBits {
    fn bits(self) -> u64;
}

impl SimTimeBits for quorum_des::SimTime {
    fn bits(self) -> u64 {
        self.as_f64().to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_timeline(horizon: f64, seed: u64) -> (Topology, ObjectCatalog, FailureTimeline) {
        let t = Topology::ring_with_chords(13, 3);
        let c = ObjectCatalog::paper_mix(13, 10);
        let params = SimParams::quick();
        let tl = FailureTimeline::build(&t, &c, &params, horizon, seed);
        (t, c, tl)
    }

    #[test]
    fn epochs_are_monotone_and_end_at_horizon() {
        let (_, _, tl) = quick_timeline(400.0, 11);
        let ends = tl.epoch_ends();
        assert!(!ends.is_empty());
        assert!(ends.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ends.last().copied(), Some(400.0));
        assert!(
            tl.num_epochs() > 1,
            "μ_f = 128 over 400 time units should produce transitions"
        );
        // Epoch count can be below transitions+1 (simultaneous events
        // coalesce into one boundary), never above.
        assert!(tl.num_epochs() as u64 <= tl.site_transitions() + tl.link_transitions() + 1);
    }

    #[test]
    fn all_up_epoch_grants_everything_the_specs_allow() {
        // Horizon far below μ_f with a fixed seed that schedules no
        // transition before it: the single epoch is the all-up network.
        let (_, c, tl) = quick_timeline(0.001, 11);
        assert_eq!(tl.num_epochs(), 1);
        assert_eq!(tl.num_assignments(), c.num_assignments());
        for (a, profile) in c.profiles().iter().enumerate() {
            for s in 0..13 {
                assert!(
                    tl.granted(0, a, s, Access::Read),
                    "profile {} read at site {s}",
                    profile.name
                );
                assert!(
                    tl.granted(0, a, s, Access::Write),
                    "profile {} write at site {s}",
                    profile.name
                );
            }
        }
    }

    #[test]
    fn grants_degrade_under_failures() {
        // Long horizon: some epoch must deny some write somewhere
        // (96 % per-component reliability over 13 sites + 39 links).
        let (_, c, tl) = quick_timeline(2000.0, 7);
        let mut denied = 0u64;
        for e in 0..tl.num_epochs() {
            for a in 0..c.num_assignments() {
                for s in 0..13 {
                    if !tl.granted(e, a, s, Access::Write) {
                        denied += 1;
                    }
                }
            }
        }
        assert!(
            denied > 0,
            "no write ever denied across {} epochs",
            tl.num_epochs()
        );
    }

    #[test]
    fn rowa_reads_survive_any_up_site() {
        // Read-one/write-all grants a read at every up site regardless
        // of partitioning: check it against a long, failure-rich run.
        let (t, c, tl) = quick_timeline(2000.0, 3);
        let rowa = 4;
        assert_eq!(c.profiles()[rowa].name, "rowa");
        let mut up_site_reads = 0u64;
        for e in 0..tl.num_epochs() {
            for s in 0..t.num_sites() {
                // A denied rowa read means the site was down (mask 0).
                if tl.granted(e, rowa, s, Access::Read) {
                    up_site_reads += 1;
                    assert!(
                        !tl.granted(e, rowa, s, Access::Write)
                            || (0..t.num_sites()).all(|x| tl.granted(e, rowa, x, Access::Read)),
                        "rowa write granted while some site is unreachable"
                    );
                }
            }
        }
        assert!(up_site_reads > 0);
    }

    #[test]
    fn build_is_deterministic() {
        let (_, _, a) = quick_timeline(500.0, 21);
        let (_, _, b) = quick_timeline(500.0, 21);
        assert_eq!(a.epoch_ends().len(), b.epoch_ends().len());
        assert!(a
            .epoch_ends()
            .iter()
            .zip(b.epoch_ends())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(a.grants, b.grants);
        assert_eq!(a.site_transitions(), b.site_transitions());
        assert_eq!(a.link_transitions(), b.link_transitions());
    }

    #[test]
    fn epoch_at_agrees_with_linear_scan() {
        let (_, _, tl) = quick_timeline(800.0, 17);
        assert!(tl.num_epochs() > 3, "want a multi-epoch fixture");
        let ends = tl.epoch_ends();
        // Probe a dense grid plus the exact boundary neighborhoods.
        let mut probes: Vec<f64> = (0..4000).map(|i| 800.0 * i as f64 / 4000.0).collect();
        for &end in ends.iter().take(ends.len() - 1) {
            probes.push(end - 1e-9);
            probes.push(end);
            probes.push(end + 1e-9);
        }
        let mut hint = 0usize;
        let mut sorted = probes.clone();
        sorted.sort_by(f64::total_cmp);
        for &t in &sorted {
            if !(0.0..800.0).contains(&t) {
                continue;
            }
            let linear = ends.iter().position(|&e| e > t).expect("t < horizon");
            assert_eq!(tl.epoch_at(t, 0), linear, "cold lookup at t={t}");
            assert_eq!(tl.epoch_at(t, hint), linear, "hinted lookup at t={t}");
            hint = linear;
        }
    }

    #[test]
    fn grant_mask_matches_granted_bits() {
        let (_, c, tl) = quick_timeline(1000.0, 9);
        for e in 0..tl.num_epochs() {
            for a in 0..c.num_assignments() {
                for s in 0..13 {
                    let mask = tl.grant_mask(e, a, s);
                    assert_eq!(mask & READ_BIT != 0, tl.granted(e, a, s, Access::Read));
                    assert_eq!(mask & WRITE_BIT != 0, tl.granted(e, a, s, Access::Write));
                    assert_eq!(mask & !(READ_BIT | WRITE_BIT), 0, "only two bits defined");
                }
            }
        }
    }

    #[test]
    fn optimized_catalog_gets_per_assignment_grant_rows() {
        let t = Topology::ring_with_chords(13, 3);
        let density = quorum_core::analytic::ring_density(13, 0.96, 0.96);
        let c = ObjectCatalog::paper_mix(13, 50).with_optimized_assignments(&density, 5, 0.2);
        assert!(c.num_assignments() > c.num_classes());
        let tl = FailureTimeline::build(&t, &c, &SimParams::quick(), 600.0, 5);
        assert_eq!(tl.num_assignments(), c.num_assignments());
        // Every profile's all-up row grants reads at every site (q_r is
        // always reachable with the full network up).
        for a in 0..c.num_assignments() {
            for s in 0..13 {
                assert!(tl.granted(0, a, s, Access::Read), "profile {a} site {s}");
            }
        }
    }

    #[test]
    fn observe_publishes_epochs_and_transitions() {
        let (_, c, tl) = quick_timeline(400.0, 11);
        let reg = quorum_obs::Registry::new();
        tl.observe_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter(quorum_obs::keys::SHARD_EPOCHS),
            tl.num_epochs() as u64
        );
        assert_eq!(
            snap.counter(quorum_obs::keys::SHARD_ASSIGNMENTS),
            c.num_assignments() as u64
        );
        assert_eq!(
            snap.counter(quorum_obs::keys::DES_SITE_TRANSITIONS),
            tl.site_transitions()
        );
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let t = Topology::ring(4);
        let c = ObjectCatalog::paper_mix(4, 1);
        FailureTimeline::build(&t, &c, &SimParams::quick(), 0.0, 1);
    }
}
