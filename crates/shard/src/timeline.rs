//! Shared failure timeline: one connectivity history for all objects.
//!
//! The §5.2 site/link renewal processes are independent of the access
//! workload, so a run over `N` objects needs the network sample path
//! exactly once. [`FailureTimeline::build`] replays the failure stream
//! through the calendar event queue and the incremental component
//! kernel, cutting simulated time into **epochs** (maximal intervals
//! with constant partition structure) and precomputing, per epoch, a
//! per-class × per-site grant bitmask: "would a read (bit 0) / write
//! (bit 1) submitted at site `s` for a class-`k` object be granted?".
//!
//! After that, serving a quorum check for any access is one byte load —
//! the million-object access loops never touch the graph code.

use crate::catalog::ObjectCatalog;
use quorum_core::protocol::Access;
use quorum_des::{CalendarQueue, SimParams};
use quorum_graph::{ComponentCache, ComponentView, NetworkState, Topology, TopologyEvent};
use quorum_replica::FailureProcesses;
use quorum_stats::rng::{derive_seed, rng_from_seed};

/// Read-granted bit in a grant mask.
const READ_BIT: u8 = 1;
/// Write-granted bit in a grant mask.
const WRITE_BIT: u8 = 2;

/// One failure/repair event in the timeline replay.
enum TimelineEvent {
    Site(usize),
    Link(usize),
}

/// The materialized connectivity history of one run.
#[derive(Debug, Clone)]
pub struct FailureTimeline {
    /// Exclusive end time of each epoch; the last entry is the horizon.
    epoch_end: Vec<f64>,
    /// Grant masks, indexed `[(epoch * classes + class) * sites + site]`.
    grants: Vec<u8>,
    sites: usize,
    classes: usize,
    site_transitions: u64,
    link_transitions: u64,
}

impl FailureTimeline {
    /// Replays the failure stream for `[0, horizon)` and precomputes the
    /// per-epoch grant tables.
    ///
    /// The failure RNG stream is `derive_seed(seed, 1)` — the same
    /// master/stream split the per-object access walks use (they draw
    /// from stream 2), so one `seed` fixes the whole run.
    ///
    /// # Panics
    /// Panics if `horizon` is not positive and finite.
    pub fn build(
        topology: &Topology,
        catalog: &ObjectCatalog,
        params: &SimParams,
        horizon: f64,
        seed: u64,
    ) -> Self {
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "horizon must be positive and finite"
        );
        let n = topology.num_sites();
        let m = topology.num_links();
        let uniform = vec![1u64; n];
        let mut rng = rng_from_seed(derive_seed(seed, 1));
        let mut procs = FailureProcesses::new(params, n, m, None, None);
        let mut queue: CalendarQueue<TimelineEvent> = CalendarQueue::new();
        procs.schedule_initial(
            &mut queue,
            &mut rng,
            TimelineEvent::Site,
            TimelineEvent::Link,
        );
        let mut state = NetworkState::all_up(topology);
        let mut cache = ComponentCache::incremental();

        let mut out = Self {
            epoch_end: Vec::new(),
            grants: Vec::new(),
            sites: n,
            classes: catalog.num_classes(),
            site_transitions: 0,
            link_transitions: 0,
        };

        loop {
            let t = match queue.peek_time() {
                Some(t) if t.as_f64() < horizon => t,
                _ => break,
            };
            // The epoch ending at `t` ran under the current state.
            out.push_epoch(
                t.as_f64(),
                catalog,
                &state,
                cache.view(topology, &state, &uniform),
            );
            // Apply every event at exactly `t` before cutting the next
            // epoch, so simultaneous transitions produce one epoch, not
            // a stack of zero-length ones.
            while queue.peek_time().map(SimTimeBits::bits) == Some(t.bits()) {
                let (_, ev) = queue.pop().expect("peeked");
                match ev {
                    TimelineEvent::Site(i) => {
                        out.site_transitions += 1;
                        let (up, gap) = procs.site_transition(i, &mut rng);
                        if state.set_site(i, up) {
                            cache.apply_event(
                                topology,
                                &state,
                                &uniform,
                                TopologyEvent::Site { site: i, up },
                            );
                        }
                        queue.schedule_in(gap, TimelineEvent::Site(i));
                    }
                    TimelineEvent::Link(i) => {
                        out.link_transitions += 1;
                        let (up, gap) = procs.link_transition(i, &mut rng);
                        if state.set_link(i, up) {
                            cache.apply_event(
                                topology,
                                &state,
                                &uniform,
                                TopologyEvent::Link { link: i, up },
                            );
                        }
                        queue.schedule_in(gap, TimelineEvent::Link(i));
                    }
                }
            }
        }
        // Final epoch: from the last transition to the horizon.
        out.push_epoch(
            horizon,
            catalog,
            &state,
            cache.view(topology, &state, &uniform),
        );
        out
    }

    /// Records the grant table of the epoch ending at `end`.
    fn push_epoch(
        &mut self,
        end: f64,
        catalog: &ObjectCatalog,
        state: &NetworkState,
        view: &ComponentView,
    ) {
        self.epoch_end.push(end);
        let comps = view.num_components();
        let mut comp_votes = vec![0u64; comps];
        for (k, class) in catalog.classes().iter().enumerate() {
            debug_assert_eq!(k, self.grants.len() / self.sites % self.classes);
            comp_votes.iter_mut().for_each(|v| *v = 0);
            for s in 0..self.sites {
                let c = view.component_of(s);
                if c != ComponentView::DOWN {
                    comp_votes[c as usize] += class.votes.votes_of(s);
                }
            }
            for s in 0..self.sites {
                let c = view.component_of(s);
                let mask = if c == ComponentView::DOWN || !state.site_up(s) {
                    0
                } else {
                    let v = comp_votes[c as usize];
                    u8::from(class.spec.read_granted(v))
                        | (u8::from(class.spec.write_granted(v)) << 1)
                };
                self.grants.push(mask);
            }
        }
    }

    /// Number of connectivity epochs (≥ 1; at least the all-up one).
    pub fn num_epochs(&self) -> usize {
        self.epoch_end.len()
    }

    /// Exclusive end times of the epochs (last entry = horizon).
    pub fn epoch_ends(&self) -> &[f64] {
        &self.epoch_end
    }

    /// Whether a read submitted at `site` during `epoch` is granted for
    /// a class-`k` object.
    #[inline]
    pub fn granted(&self, epoch: usize, class: usize, site: usize, kind: Access) -> bool {
        let mask = self.grants[(epoch * self.classes + class) * self.sites + site];
        match kind {
            Access::Read => mask & READ_BIT != 0,
            Access::Write => mask & WRITE_BIT != 0,
        }
    }

    /// Site up/down transitions applied before the horizon.
    pub fn site_transitions(&self) -> u64 {
        self.site_transitions
    }

    /// Link up/down transitions applied before the horizon.
    pub fn link_transitions(&self) -> u64 {
        self.link_transitions
    }

    /// Publishes timeline totals into an observability registry.
    pub fn observe_into(&self, registry: &quorum_obs::Registry) {
        registry.add(
            quorum_obs::keys::DES_SITE_TRANSITIONS,
            self.site_transitions,
        );
        registry.add(
            quorum_obs::keys::DES_LINK_TRANSITIONS,
            self.link_transitions,
        );
        registry.add(quorum_obs::keys::SHARD_EPOCHS, self.num_epochs() as u64);
    }
}

/// Total-order bit view of a [`quorum_des::SimTime`] for exact
/// same-timestamp grouping without a float `==` (timestamps compared
/// here are copies of one another, so bit equality is the intent).
trait SimTimeBits {
    fn bits(self) -> u64;
}

impl SimTimeBits for quorum_des::SimTime {
    fn bits(self) -> u64 {
        self.as_f64().to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_timeline(horizon: f64, seed: u64) -> (Topology, ObjectCatalog, FailureTimeline) {
        let t = Topology::ring_with_chords(13, 3);
        let c = ObjectCatalog::paper_mix(13, 10);
        let params = SimParams::quick();
        let tl = FailureTimeline::build(&t, &c, &params, horizon, seed);
        (t, c, tl)
    }

    #[test]
    fn epochs_are_monotone_and_end_at_horizon() {
        let (_, _, tl) = quick_timeline(400.0, 11);
        let ends = tl.epoch_ends();
        assert!(!ends.is_empty());
        assert!(ends.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ends.last().copied(), Some(400.0));
        assert!(
            tl.num_epochs() > 1,
            "μ_f = 128 over 400 time units should produce transitions"
        );
        // Epoch count can be below transitions+1 (simultaneous events
        // coalesce into one boundary), never above.
        assert!(tl.num_epochs() as u64 <= tl.site_transitions() + tl.link_transitions() + 1);
    }

    #[test]
    fn all_up_epoch_grants_everything_the_specs_allow() {
        // Horizon far below μ_f with a fixed seed that schedules no
        // transition before it: the single epoch is the all-up network.
        let (_, c, tl) = quick_timeline(0.001, 11);
        assert_eq!(tl.num_epochs(), 1);
        for (k, class) in c.classes().iter().enumerate() {
            for s in 0..13 {
                assert!(
                    tl.granted(0, k, s, Access::Read),
                    "class {} read at site {s}",
                    class.name
                );
                assert!(
                    tl.granted(0, k, s, Access::Write),
                    "class {} write at site {s}",
                    class.name
                );
            }
        }
    }

    #[test]
    fn grants_degrade_under_failures() {
        // Long horizon: some epoch must deny some write somewhere
        // (96 % per-component reliability over 13 sites + 39 links).
        let (_, c, tl) = quick_timeline(2000.0, 7);
        let mut denied = 0u64;
        for e in 0..tl.num_epochs() {
            for k in 0..c.num_classes() {
                for s in 0..13 {
                    if !tl.granted(e, k, s, Access::Write) {
                        denied += 1;
                    }
                }
            }
        }
        assert!(
            denied > 0,
            "no write ever denied across {} epochs",
            tl.num_epochs()
        );
    }

    #[test]
    fn rowa_reads_survive_any_up_site() {
        // Read-one/write-all grants a read at every up site regardless
        // of partitioning: check it against a long, failure-rich run.
        let (t, c, tl) = quick_timeline(2000.0, 3);
        let rowa = 4;
        assert_eq!(c.class(rowa).name, "rowa");
        let mut up_site_reads = 0u64;
        for e in 0..tl.num_epochs() {
            for s in 0..t.num_sites() {
                // A denied rowa read means the site was down (mask 0).
                if tl.granted(e, rowa, s, Access::Read) {
                    up_site_reads += 1;
                    assert!(
                        !tl.granted(e, rowa, s, Access::Write)
                            || (0..t.num_sites()).all(|x| tl.granted(e, rowa, x, Access::Read)),
                        "rowa write granted while some site is unreachable"
                    );
                }
            }
        }
        assert!(up_site_reads > 0);
    }

    #[test]
    fn build_is_deterministic() {
        let (_, _, a) = quick_timeline(500.0, 21);
        let (_, _, b) = quick_timeline(500.0, 21);
        assert_eq!(a.epoch_ends().len(), b.epoch_ends().len());
        assert!(a
            .epoch_ends()
            .iter()
            .zip(b.epoch_ends())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(a.grants, b.grants);
        assert_eq!(a.site_transitions(), b.site_transitions());
        assert_eq!(a.link_transitions(), b.link_transitions());
    }

    #[test]
    fn observe_publishes_epochs_and_transitions() {
        let (_, _, tl) = quick_timeline(400.0, 11);
        let reg = quorum_obs::Registry::new();
        tl.observe_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter(quorum_obs::keys::SHARD_EPOCHS),
            tl.num_epochs() as u64
        );
        assert_eq!(
            snap.counter(quorum_obs::keys::DES_SITE_TRANSITIONS),
            tl.site_transitions()
        );
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let t = Topology::ring(4);
        let c = ObjectCatalog::paper_mix(4, 1);
        FailureTimeline::build(&t, &c, &SimParams::quick(), 0.0, 1);
    }
}
