//! Simulation timestamps.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A simulation timestamp in abstract time units (the paper's unit is the
/// mean inter-access time `μ_t = 1`).
///
/// Wraps `f64` but is totally ordered: construction rejects NaN, so `Ord`
/// is safe. Event times are non-negative by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a timestamp.
    ///
    /// # Panics
    /// Panics if `t` is NaN or negative.
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "SimTime cannot be NaN");
        assert!(t >= 0.0, "SimTime cannot be negative, got {t}");
        Self(t)
    }

    /// The raw value.
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN is rejected at construction.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, dt: f64) -> SimTime {
        SimTime::new(self.0 + dt)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, dt: f64) {
        *self = *self + dt;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, other: SimTime) -> f64 {
        self.0 - other.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        assert!(SimTime::new(1.0) < SimTime::new(2.0));
        assert!(SimTime::ZERO <= SimTime::new(0.0));
        assert_eq!(SimTime::new(3.5).max(SimTime::new(2.0)), SimTime::new(3.5));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::new(1.5) + 2.5;
        assert_eq!(t.as_f64(), 4.0);
        assert_eq!(t - SimTime::new(1.0), 3.0);
        let mut u = SimTime::ZERO;
        u += 0.25;
        assert_eq!(u.as_f64(), 0.25);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_rejected() {
        SimTime::new(-0.1);
    }
}
