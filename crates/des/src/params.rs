//! The paper's simulation parameter set (§5.2).

/// Parameters of the stochastic system model.
///
/// Defaults reproduce §5.2 exactly:
///
/// * per-site access submission: Poisson, mean `μ_t = 1`;
/// * `ρ = μ_t / μ_f = 1/128`, so `μ_f = 128` for every site and link;
/// * component reliability `μ_f / (μ_f + μ_r) = 0.96`;
/// * 100 000-access warm-up, 1 000 000-access measurement batches;
/// * batches added (5 to 18) until the 95 % CI half-width is ≤ 0.5 %.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// Mean time between accesses submitted by one site (`μ_t`).
    pub mu_access: f64,
    /// Ratio of mean time-to-next-access to mean time-to-next-failure (`ρ`).
    pub rho: f64,
    /// Long-run fraction of time each site/link is up.
    pub reliability: f64,
    /// Accesses discarded before measurement begins.
    pub warmup_accesses: u64,
    /// Accesses measured per batch.
    pub batch_accesses: u64,
    /// Minimum number of batches.
    pub min_batches: u64,
    /// Maximum number of batches (paper used 5–18).
    pub max_batches: u64,
    /// Confidence level for the availability interval.
    pub confidence: f64,
    /// Target CI half-width.
    pub ci_half_width: f64,
    /// Up-duration distribution shape (paper: exponential).
    pub fail_dist: crate::failure::DurationDist,
    /// Down-duration distribution shape (paper: exponential).
    pub repair_dist: crate::failure::DurationDist,
}

impl SimParams {
    /// The paper's full-scale parameters.
    pub fn paper() -> Self {
        Self {
            mu_access: 1.0,
            rho: 1.0 / 128.0,
            reliability: 0.96,
            warmup_accesses: 100_000,
            batch_accesses: 1_000_000,
            min_batches: 5,
            max_batches: 18,
            confidence: 0.95,
            ci_half_width: 0.005,
            fail_dist: crate::failure::DurationDist::Exponential,
            repair_dist: crate::failure::DurationDist::Exponential,
        }
    }

    /// A reduced-scale variant for fast tests/CI: same stochastic model,
    /// shorter batches.
    pub fn quick() -> Self {
        Self {
            warmup_accesses: 5_000,
            batch_accesses: 30_000,
            min_batches: 3,
            max_batches: 6,
            ci_half_width: 0.02,
            ..Self::paper()
        }
    }

    /// Mean time-to-failure `μ_f = μ_t / ρ`.
    pub fn mu_fail(&self) -> f64 {
        self.mu_access / self.rho
    }

    /// Mean time-to-repair `μ_r = μ_f (1 − rel) / rel`.
    pub fn mu_repair(&self) -> f64 {
        self.mu_fail() * (1.0 - self.reliability) / self.reliability
    }

    /// The shared batch-orchestrator configuration these parameters
    /// imply: same stopping rule (§5.2), `threads` workers.
    pub fn converge_params(&self, threads: usize) -> quorum_stats::ConvergeParams {
        quorum_stats::ConvergeParams {
            confidence: self.confidence,
            target_half_width: self.ci_half_width,
            min_batches: self.min_batches,
            max_batches: self.max_batches,
            threads,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics on invalid parameter combinations.
    pub fn validate(&self) {
        assert!(self.mu_access > 0.0, "μ_t must be positive");
        assert!(self.rho > 0.0, "ρ must be positive");
        assert!(
            self.reliability > 0.0 && self.reliability < 1.0,
            "reliability must lie in (0,1)"
        );
        assert!(self.batch_accesses > 0, "batches must measure something");
        assert!(
            self.min_batches >= 2 && self.min_batches <= self.max_batches,
            "need 2 <= min_batches <= max_batches"
        );
        assert!(self.confidence > 0.0 && self.confidence < 1.0);
        assert!(self.ci_half_width > 0.0);
    }
}

impl Default for SimParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Converts a [`quorum_stats::converge`] trace into the manifest's
/// [`quorum_obs::CiPoint`] form (both runners record per-round points).
pub fn ci_points(trace: &[quorum_stats::TracePoint]) -> Vec<quorum_obs::CiPoint> {
    trace
        .iter()
        .map(|p| quorum_obs::CiPoint {
            batches: p.batches,
            mean: p.mean,
            half_width: p.half_width,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_derived_values() {
        let p = SimParams::paper();
        p.validate();
        assert!((p.mu_fail() - 128.0).abs() < 1e-12);
        // μ_r = 128 * 0.04 / 0.96 = 16/3.
        assert!((p.mu_repair() - 16.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn quick_is_valid_and_same_model() {
        let q = SimParams::quick();
        q.validate();
        assert_eq!(q.mu_access, SimParams::paper().mu_access);
        assert_eq!(q.rho, SimParams::paper().rho);
        assert_eq!(q.reliability, SimParams::paper().reliability);
        assert!(q.batch_accesses < SimParams::paper().batch_accesses);
    }

    #[test]
    fn reliability_identity_holds() {
        let p = SimParams::paper();
        let rel = p.mu_fail() / (p.mu_fail() + p.mu_repair());
        assert!((rel - p.reliability).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "reliability")]
    fn invalid_reliability_caught() {
        let mut p = SimParams::paper();
        p.reliability = 1.5;
        p.validate();
    }
}
