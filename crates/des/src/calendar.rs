//! A calendar-queue future-event list.
//!
//! The binary-heap [`EventQueue`](crate::EventQueue) pays O(log n) per
//! operation with poor locality once the pending set grows to hundreds
//! of thousands of timers (one per simulated object). A calendar queue
//! (Brown 1988) buckets events by "day" — a fixed-width window of
//! simulated time — and pops by scanning the current day's bucket, which
//! is amortized O(1) when the bucket width tracks the mean inter-event
//! gap. The bucket count doubles/halves as the pending set grows and
//! shrinks, and the width is re-estimated from the stored events at each
//! resize.
//!
//! ## Determinism contract
//!
//! [`CalendarQueue`] pops in exactly the same order as the heap: the
//! global minimum of the total `(time, insertion seq)` key. Day windows
//! only narrow *where* to look — within a window the scan still selects
//! the minimum key, and windows are visited in increasing order, so the
//! selected event is the global minimum. The equivalence proptest below
//! pins heap and calendar to identical pop sequences over random
//! schedule/cancel/pop interleavings; `tests/manifest_stability.rs` and
//! the replica pin test extend that to whole simulations.

use crate::event::{EventKey, Scheduled};
use crate::time::SimTime;
use std::collections::BTreeSet;

const MIN_BUCKETS: usize = 16;

/// A deterministic future-event list with amortized O(1) operations.
///
/// Drop-in replacement for [`crate::EventQueue`] (both implement
/// [`crate::EventSchedule`]): same pop order, same causality assertion,
/// same cancellation semantics, same lifetime counters.
#[derive(Debug, Clone)]
pub struct CalendarQueue<E> {
    /// `buckets[d % nbuckets]` holds every pending event of day `d`
    /// (plus events of other days congruent mod the bucket count).
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Width of one day window, in simulated time units.
    width: f64,
    /// Entries resident in the buckets, tombstones included.
    stored: usize,
    next_seq: u64,
    popped: u64,
    now: SimTime,
    /// Seq numbers of cancellable entries still pending. Ordered set so
    /// no iteration-order exception is ever needed.
    live_keys: BTreeSet<u64>,
    /// Seq numbers cancelled but not yet reaped from their buckets.
    voided: BTreeSet<u64>,
    cancelled: u64,
    compactions: u64,
}

impl<E> CalendarQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1.0,
            stored: 0,
            next_seq: 0,
            popped: 0,
            now: SimTime::ZERO,
            live_keys: BTreeSet::new(),
            voided: BTreeSet::new(),
            cancelled: 0,
            compactions: 0,
        }
    }

    fn day_of(&self, time: SimTime) -> u64 {
        // Saturating cast: far-future times collapse into one "day",
        // where the in-window scan still orders them by (time, seq).
        (time.as_f64() / self.width) as u64
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` precedes the current simulation time (causality).
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let nb = self.buckets.len();
        let b = (self.day_of(time) % nb as u64) as usize;
        self.buckets[b].push(Scheduled { time, seq, payload });
        self.stored += 1;
        if self.stored > 2 * nb {
            self.resize(nb * 2);
        }
    }

    /// Schedules `payload` at `now + dt`.
    pub fn schedule_in(&mut self, dt: f64, payload: E) {
        let t = self.now + dt;
        self.schedule(t, payload);
    }

    /// Schedules `payload` at `time` and returns a key that can later
    /// [`CalendarQueue::cancel`] the entry.
    ///
    /// # Panics
    /// Panics if `time` precedes the current simulation time (causality).
    pub fn schedule_cancellable(&mut self, time: SimTime, payload: E) -> EventKey {
        let key = EventKey(self.next_seq);
        self.schedule(time, payload);
        self.live_keys.insert(key.0);
        key
    }

    /// Schedules a cancellable `payload` at `now + dt`.
    pub fn schedule_cancellable_in(&mut self, dt: f64, payload: E) -> EventKey {
        let t = self.now + dt;
        self.schedule_cancellable(t, payload)
    }

    /// Voids a cancellable entry (same semantics as
    /// [`crate::EventQueue::cancel`]), compacting the buckets once
    /// tombstones outnumber half the live entries.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let was_live = self.live_keys.remove(&key.0);
        if was_live {
            self.voided.insert(key.0);
            self.cancelled += 1;
            if self.voided.len() > self.len() / 2 {
                self.compact();
            }
        }
        was_live
    }

    /// Reaps every tombstone from every bucket.
    fn compact(&mut self) {
        if self.voided.is_empty() {
            return;
        }
        for b in 0..self.buckets.len() {
            self.purge_voided(b);
        }
        self.compactions += 1;
    }

    /// Drops the voided entries resident in bucket `b`.
    fn purge_voided(&mut self, b: usize) {
        if self.voided.is_empty() {
            return;
        }
        let voided = &mut self.voided;
        let mut removed = 0usize;
        self.buckets[b].retain(|e| {
            if voided.remove(&e.seq) {
                removed += 1;
                false
            } else {
                true
            }
        });
        self.stored -= removed;
    }

    /// Redistributes every entry over `new_nb` buckets, re-estimating the
    /// day width from the mean spacing of the stored events (≈3 of the
    /// mean gap per window, Brown's rule of thumb).
    fn resize(&mut self, new_nb: usize) {
        let new_nb = new_nb.max(MIN_BUCKETS);
        let mut all: Vec<Scheduled<E>> = Vec::with_capacity(self.stored);
        for b in &mut self.buckets {
            all.append(b);
        }
        let mut min_t = f64::INFINITY;
        let mut max_t = f64::NEG_INFINITY;
        for e in &all {
            min_t = min_t.min(e.time.as_f64());
            max_t = max_t.max(e.time.as_f64());
        }
        let span = max_t - min_t;
        let width = if all.is_empty() {
            1.0
        } else {
            span / all.len() as f64 * 3.0
        };
        self.width = if width.is_finite() && width > 0.0 {
            width
        } else {
            1.0
        };
        self.buckets = (0..new_nb).map(|_| Vec::new()).collect();
        for e in all {
            let b = (self.day_of(e.time) % new_nb as u64) as usize;
            self.buckets[b].push(e);
        }
    }

    /// Locates the next surviving event as `(bucket, slot)`, purging any
    /// tombstones encountered on the way. `None` means empty (and leaves
    /// the queue fully reaped).
    fn find_next(&mut self) -> Option<(usize, usize)> {
        if self.stored == self.voided.len() {
            // Nothing but tombstones (possibly none at all).
            if self.stored > 0 {
                self.compact();
            }
            return None;
        }
        let nb = self.buckets.len() as u64;
        let start = self.day_of(self.now);
        // Every pending event has time >= now (causality + pop order),
        // hence day >= start; visit day windows in increasing order and
        // take the (time, seq) minimum of the first non-empty window.
        for step in 0..nb {
            let day = start.saturating_add(step);
            let b = (day % nb) as usize;
            self.purge_voided(b);
            if let Some(slot) = Self::min_in_window(&self.buckets[b], |t| self.day_of(t) == day) {
                return Some((b, slot));
            }
        }
        // Sparse tail: no event within one full rotation of windows.
        // Fall back to a direct scan for the global minimum.
        let mut best: Option<(SimTime, u64, usize, usize)> = None;
        for b in 0..self.buckets.len() {
            self.purge_voided(b);
            for (i, e) in self.buckets[b].iter().enumerate() {
                let candidate = (e.time, e.seq, b, i);
                if best.is_none_or(|(bt, bs, _, _)| (e.time, e.seq) < (bt, bs)) {
                    best = Some(candidate);
                }
            }
        }
        best.map(|(_, _, b, i)| (b, i))
    }

    /// Index of the `(time, seq)`-minimal entry of `bucket` whose time
    /// falls in the current day window.
    fn min_in_window(
        bucket: &[Scheduled<E>],
        in_window: impl Fn(SimTime) -> bool,
    ) -> Option<usize> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (i, e) in bucket.iter().enumerate() {
            if !in_window(e.time) {
                continue;
            }
            if best.is_none_or(|(bt, bs, _)| (e.time, e.seq) < (bt, bs)) {
                best = Some((e.time, e.seq, i));
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Pops the earliest surviving event, advancing the clock to its
    /// timestamp. Cancelled entries are reaped without advancing the
    /// clock or counting toward [`CalendarQueue::popped`].
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (b, i) = self.find_next()?;
        let e = self.buckets[b].swap_remove(i);
        self.stored -= 1;
        self.live_keys.remove(&e.seq);
        self.now = e.time;
        self.popped += 1;
        let nb = self.buckets.len();
        if nb > MIN_BUCKETS && self.stored < nb / 4 {
            self.resize(nb / 2);
        }
        Some((e.time, e.payload))
    }

    /// Timestamp of the next surviving event without popping.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let (b, i) = self.find_next()?;
        Some(self.buckets[b][i].time)
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.stored - self.voided.len()
    }

    /// True if no non-cancelled events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries cancelled over the queue's lifetime.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Total events scheduled over the queue's lifetime.
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }

    /// Total events popped (processed) over the queue's lifetime.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Cancelled entries currently awaiting reaping.
    pub fn tombstones(&self) -> u64 {
        self.voided.len() as u64
    }

    /// Tombstone compaction sweeps performed over the queue's lifetime.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Number of day buckets currently allocated (resize observability).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Records the queue's lifetime totals into an observability
    /// registry under the [`quorum_obs::keys`] DES names.
    pub fn observe_into(&self, registry: &quorum_obs::Registry) {
        registry.add(quorum_obs::keys::DES_EVENTS, self.popped);
        registry.add(quorum_obs::keys::DES_EVENTS_SCHEDULED, self.next_seq);
        registry.add(quorum_obs::keys::DES_QUEUE_COMPACTIONS, self.compactions);
        registry.set_gauge(
            quorum_obs::keys::DES_QUEUE_TOMBSTONES,
            self.voided.len() as f64,
        );
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::new(3.0), "c");
        q.schedule(SimTime::new(1.0), "a");
        q.schedule(SimTime::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::new(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn grows_and_shrinks_with_load() {
        let mut q = CalendarQueue::new();
        for i in 0..500u64 {
            // Deterministic scatter over [0, 100).
            let t = (i.wrapping_mul(2_654_435_761) % 10_000) as f64 / 100.0;
            q.schedule(SimTime::new(t), i);
        }
        assert!(q.num_buckets() > MIN_BUCKETS, "load must grow the table");
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.num_buckets(), MIN_BUCKETS, "drain must shrink back");
        assert_eq!(q.popped(), 500);
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::new(0.5), "near");
        q.schedule(SimTime::new(1.0e6), "far");
        q.schedule(SimTime::new(2.5e6), "farther");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "farther");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancellation_matches_heap_semantics() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::new(1.0), "keep-a");
        let key = q.schedule_cancellable(SimTime::new(2.0), "timer");
        q.schedule(SimTime::new(3.0), "keep-b");
        assert!(q.cancel(key));
        assert!(!q.cancel(key), "double-cancel is a no-op");
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancelled(), 1);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["keep-a", "keep-b"]);
        assert_eq!(q.popped(), 2);
    }

    #[test]
    fn tombstones_are_compacted() {
        let mut q = CalendarQueue::new();
        let keys: Vec<EventKey> = (0..100)
            .map(|i| q.schedule_cancellable(SimTime::new(i as f64), i))
            .collect();
        for key in keys.iter().step_by(2) {
            q.cancel(*key);
        }
        assert!(q.compactions() >= 1);
        assert!(q.tombstones() <= q.len() as u64 / 2 + 1);
        assert_eq!(q.len(), 50);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (1..100).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::new(9.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::new(9.0)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::new(5.0), ());
        q.pop();
        q.schedule(SimTime::new(4.0), ());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// One step of the randomized differential test.
        #[derive(Debug, Clone)]
        enum Op {
            Schedule(f64),
            ScheduleCancellable(f64),
            Pop,
            /// Cancel the `k`-th most recently issued key (if any).
            Cancel(usize),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            (0u8..4, 0.0f64..50.0, 0usize..8).prop_map(|(which, dt, k)| match which {
                0 => Op::Schedule(dt),
                1 => Op::ScheduleCancellable(dt),
                2 => Op::Pop,
                _ => Op::Cancel(k),
            })
        }

        proptest! {
            /// The calendar queue is observationally identical to the
            /// binary-heap reference over arbitrary interleavings of
            /// schedules, cancellable schedules, cancels, and pops.
            #[test]
            fn matches_binary_heap_reference(ops in prop::collection::vec(op_strategy(), 1..300)) {
                let mut heap = EventQueue::new();
                let mut cal = CalendarQueue::new();
                let mut keys: Vec<EventKey> = Vec::new();
                let mut payload = 0u64;
                for op in ops {
                    match op {
                        Op::Schedule(dt) => {
                            heap.schedule_in(dt, payload);
                            cal.schedule_in(dt, payload);
                            payload += 1;
                        }
                        Op::ScheduleCancellable(dt) => {
                            let hk = heap.schedule_cancellable_in(dt, payload);
                            let ck = cal.schedule_cancellable_in(dt, payload);
                            prop_assert_eq!(hk, ck, "key allocation must agree");
                            keys.push(hk);
                            payload += 1;
                        }
                        Op::Pop => {
                            prop_assert_eq!(heap.pop(), cal.pop());
                            prop_assert_eq!(heap.now(), cal.now());
                        }
                        Op::Cancel(k) => {
                            if !keys.is_empty() {
                                let key = keys[keys.len() - 1 - k % keys.len()];
                                prop_assert_eq!(heap.cancel(key), cal.cancel(key));
                            }
                        }
                    }
                    prop_assert_eq!(heap.len(), cal.len());
                    prop_assert_eq!(heap.scheduled(), cal.scheduled());
                    prop_assert_eq!(heap.cancelled(), cal.cancelled());
                }
                loop {
                    let a = heap.pop();
                    let b = cal.pop();
                    prop_assert_eq!(&a, &b);
                    if a.is_none() {
                        break;
                    }
                }
                prop_assert_eq!(heap.popped(), cal.popped());
            }
        }
    }
}
