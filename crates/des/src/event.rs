//! The future-event list.

use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};

/// One scheduled entry. Shared with the calendar-queue implementation
/// so both event lists order entries by exactly the same `(time, seq)`
/// key and therefore pop bit-identical sequences.
#[derive(Debug, Clone)]
pub(crate) struct Scheduled<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Handle to a cancellable entry returned by
/// [`EventQueue::schedule_cancellable`]. Passing it to
/// [`EventQueue::cancel`] voids the entry: it stays in the heap but is
/// silently skipped when its turn comes (void-on-pop), so cancellation is
/// O(1) and never perturbs the order of surviving events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(pub(crate) u64);

impl EventKey {
    /// The key's raw sequence number. Together with
    /// [`EventKey::from_raw`] this lets scheduler adapters (e.g. the
    /// cluster engine's `Scheduler` trait) round-trip keys through their
    /// own opaque handle types without a side table.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a key from a value previously obtained via
    /// [`EventKey::raw`]. Passing a fabricated value is safe: cancelling
    /// a key that was never issued is a no-op.
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }
}

/// A deterministic future-event list.
///
/// Events pop in non-decreasing time order; simultaneous events pop in
/// insertion (FIFO) order, which keeps simulations reproducible across runs
/// regardless of heap internals.
///
/// Entries scheduled through [`EventQueue::schedule_cancellable`] can be
/// invalidated later (session timeouts that were beaten by a reply); a
/// cancelled entry is skipped on pop without advancing the clock or
/// counting as a processed event.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
    popped: u64,
    now: SimTime,
    /// Seq numbers of cancellable entries still in the heap.
    live_keys: HashSet<u64>,
    /// Seq numbers cancelled but not yet reaped from the heap.
    voided: HashSet<u64>,
    cancelled: u64,
    compactions: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
            now: SimTime::ZERO,
            live_keys: HashSet::new(),
            voided: HashSet::new(),
            cancelled: 0,
            compactions: 0,
        }
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` precedes the current simulation time (causality).
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, payload }));
    }

    /// Schedules `payload` at `now + dt`.
    pub fn schedule_in(&mut self, dt: f64, payload: E) {
        let t = self.now + dt;
        self.schedule(t, payload);
    }

    /// Schedules `payload` at absolute time `time` and returns a key that
    /// can later [`EventQueue::cancel`] the entry (e.g. a session timeout
    /// that a quorum of replies may beat).
    ///
    /// # Panics
    /// Panics if `time` precedes the current simulation time (causality).
    pub fn schedule_cancellable(&mut self, time: SimTime, payload: E) -> EventKey {
        let key = EventKey(self.next_seq);
        self.schedule(time, payload);
        self.live_keys.insert(key.0);
        key
    }

    /// Schedules a cancellable `payload` at `now + dt`.
    pub fn schedule_cancellable_in(&mut self, dt: f64, payload: E) -> EventKey {
        let t = self.now + dt;
        self.schedule_cancellable(t, payload)
    }

    /// Voids a cancellable entry. Returns `true` if the entry was still
    /// pending (not yet popped or previously cancelled); the entry is then
    /// skipped silently when the heap reaches it.
    ///
    /// Tombstones are reaped eagerly once they outnumber half the live
    /// entries, so retry-heavy runs (most timers beaten by replies) keep
    /// the heap at O(live) instead of growing monotonically.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let was_live = self.live_keys.remove(&key.0);
        if was_live {
            self.voided.insert(key.0);
            self.cancelled += 1;
            if self.voided.len() > self.len() / 2 {
                self.compact();
            }
        }
        was_live
    }

    /// Rebuilds the heap without the voided entries. Pop order is
    /// unaffected: the heap's internal layout changes, but extraction is
    /// always by the total `(time, seq)` order.
    fn compact(&mut self) {
        let heap = std::mem::take(&mut self.heap);
        self.heap = heap
            .into_iter()
            .filter(|Reverse(ev)| !self.voided.contains(&ev.seq))
            .collect();
        self.voided.clear();
        self.compactions += 1;
    }

    /// Pops the earliest surviving event, advancing the clock to its
    /// timestamp. Cancelled entries are reaped without advancing the clock
    /// or counting toward [`EventQueue::popped`].
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let Reverse(ev) = self.heap.pop()?;
            if self.voided.remove(&ev.seq) {
                continue;
            }
            self.live_keys.remove(&ev.seq);
            self.now = ev.time;
            self.popped += 1;
            return Some((ev.time, ev.payload));
        }
    }

    /// Timestamp of the next surviving event without popping.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let seq = self.heap.peek().map(|Reverse(ev)| ev.seq)?;
            if self.voided.remove(&seq) {
                self.heap.pop();
                continue;
            }
            return self.heap.peek().map(|Reverse(ev)| ev.time);
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.voided.len()
    }

    /// True if no non-cancelled events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries cancelled over the queue's lifetime.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Cancelled entries currently awaiting reaping (heap residency minus
    /// live entries). Bounded by half the live entries plus one — the
    /// compaction threshold.
    pub fn tombstones(&self) -> u64 {
        self.voided.len() as u64
    }

    /// Tombstone compaction sweeps performed over the queue's lifetime.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Total events scheduled over the queue's lifetime.
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }

    /// Total events popped (processed) over the queue's lifetime.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Records the queue's lifetime totals into an observability
    /// registry under the [`quorum_obs::keys`] DES names.
    pub fn observe_into(&self, registry: &quorum_obs::Registry) {
        registry.add(quorum_obs::keys::DES_EVENTS, self.popped);
        registry.add(quorum_obs::keys::DES_EVENTS_SCHEDULED, self.next_seq);
        registry.add(quorum_obs::keys::DES_QUEUE_COMPACTIONS, self.compactions);
        registry.set_gauge(
            quorum_obs::keys::DES_QUEUE_TOMBSTONES,
            self.voided.len() as f64,
        );
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(3.0), "c");
        q.schedule(SimTime::new(1.0), "a");
        q.schedule(SimTime::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::new(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(2.5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::new(2.5));
        assert_eq!(q.now(), SimTime::new(2.5));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(1.0), "first");
        q.pop();
        q.schedule_in(0.5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::new(1.5));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(9.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::new(9.0)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn lifetime_totals_track_schedules_and_pops() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(SimTime::new(i as f64), i);
        }
        q.pop();
        q.pop();
        assert_eq!(q.scheduled(), 5);
        assert_eq!(q.popped(), 2);
        let r = quorum_obs::Registry::new();
        q.observe_into(&r);
        let snap = r.snapshot();
        assert_eq!(snap.counter(quorum_obs::keys::DES_EVENTS), 2);
        assert_eq!(snap.counter(quorum_obs::keys::DES_EVENTS_SCHEDULED), 5);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
    }

    #[test]
    fn cancel_before_pop_voids_entry() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(1.0), "keep-a");
        let key = q.schedule_cancellable(SimTime::new(2.0), "timer");
        q.schedule(SimTime::new(3.0), "keep-b");
        assert_eq!(q.len(), 3);
        assert!(q.cancel(key));
        assert!(!q.cancel(key), "double-cancel is a no-op");
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancelled(), 1);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["keep-a", "keep-b"]);
        // The voided entry never counted as processed.
        assert_eq!(q.popped(), 2);
    }

    #[test]
    fn cancelled_entry_does_not_advance_clock() {
        let mut q = EventQueue::new();
        let key = q.schedule_cancellable(SimTime::new(5.0), "timer");
        q.schedule(SimTime::new(9.0), "real");
        q.cancel(key);
        let (t, p) = q.pop().unwrap();
        assert_eq!(p, "real");
        assert_eq!(t, SimTime::new(9.0));
        assert_eq!(q.now(), SimTime::new(9.0));
    }

    #[test]
    fn cancel_after_pop_is_rejected() {
        let mut q = EventQueue::new();
        let key = q.schedule_cancellable(SimTime::new(1.0), "timer");
        assert_eq!(q.pop().unwrap().1, "timer");
        assert!(!q.cancel(key), "already delivered");
        assert_eq!(q.cancelled(), 0);
    }

    #[test]
    fn cancellable_ties_keep_fifo_order() {
        // Cancellable and plain entries at the same timestamp pop in
        // insertion order, and voiding one of them never reorders the
        // survivors.
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for i in 0..6 {
            keys.push(q.schedule_cancellable(SimTime::new(4.0), i));
        }
        q.schedule(SimTime::new(4.0), 6);
        q.cancel(keys[1]);
        q.cancel(keys[4]);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![0, 2, 3, 5, 6]);
    }

    #[test]
    fn tombstones_are_compacted_when_they_outnumber_half_the_live() {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for i in 0..100 {
            keys.push(q.schedule_cancellable(SimTime::new(i as f64), i));
        }
        // Cancel even entries: tombstones cross live/2 long before the
        // end, so at least one sweep must fire and the residue stays
        // below the threshold.
        for key in keys.iter().step_by(2) {
            q.cancel(*key);
        }
        assert!(q.compactions() >= 1, "no compaction after 50 cancels");
        assert!(
            q.tombstones() <= q.len() as u64 / 2 + 1,
            "tombstones {} vs live {}",
            q.tombstones(),
            q.len()
        );
        assert_eq!(q.len(), 50);
        assert_eq!(q.cancelled(), 50);
        // Survivors still pop in order, nothing lost or duplicated.
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (1..100).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn compaction_is_observable() {
        let mut q = EventQueue::new();
        let keys: Vec<EventKey> = (0..8)
            .map(|i| q.schedule_cancellable(SimTime::new(i as f64), i))
            .collect();
        for key in &keys[..6] {
            q.cancel(*key);
        }
        let r = quorum_obs::Registry::new();
        q.observe_into(&r);
        let snap = r.snapshot();
        assert!(snap.counter(quorum_obs::keys::DES_QUEUE_COMPACTIONS) >= 1);
        let residue = q.tombstones();
        assert_eq!(
            snap.gauges.get(quorum_obs::keys::DES_QUEUE_TOMBSTONES),
            Some(&(residue as f64))
        );
    }

    #[test]
    fn peek_skips_cancelled_entries() {
        let mut q = EventQueue::new();
        let key = q.schedule_cancellable(SimTime::new(1.0), "timer");
        q.schedule(SimTime::new(2.0), "real");
        q.cancel(key);
        assert_eq!(q.peek_time(), Some(SimTime::new(2.0)));
        assert_eq!(q.pop().unwrap().1, "real");
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(5.0), ());
        q.pop();
        q.schedule(SimTime::new(4.0), ());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Events always pop in non-decreasing time order, with FIFO
            /// ties, for arbitrary interleavings of schedules and pops.
            #[test]
            fn pops_are_monotone_and_fifo(ops in prop::collection::vec((0.0f64..100.0, prop::bool::ANY), 1..200)) {
                let mut q = EventQueue::new();
                let mut seq = 0u64;
                let mut last: Option<(SimTime, u64)> = None;
                for (dt, do_pop) in ops {
                    if do_pop {
                        if let Some((t, s)) = q.pop() {
                            if let Some((lt, ls)) = last {
                                prop_assert!(t > lt || (t == lt && s > ls));
                            }
                            prop_assert!(t >= SimTime::ZERO);
                            last = Some((t, s));
                        }
                    } else {
                        q.schedule_in(dt, seq);
                        seq += 1;
                    }
                }
                // Drain the remainder.
                while let Some((t, s)) = q.pop() {
                    if let Some((lt, ls)) = last {
                        prop_assert!(t > lt || (t == lt && s > ls));
                    }
                    last = Some((t, s));
                }
                prop_assert!(q.is_empty());
            }
        }
    }
}
