//! The scheduling interface shared by the event-list implementations.
//!
//! [`EventSchedule`] abstracts over the binary-heap [`EventQueue`]
//! (the reference implementation) and the calendar-queue
//! [`CalendarQueue`] (the production implementation) so simulators can
//! be written once and run on either. Both implementations promise the
//! same observable behaviour — pops in `(time, insertion)` order,
//! cancellation by key, identical lifetime counters — and the
//! equivalence proptests in `calendar.rs` pin that promise on random
//! schedules.

use crate::calendar::CalendarQueue;
use crate::event::{EventKey, EventQueue};
use crate::time::SimTime;

/// A deterministic future-event list: events pop in non-decreasing time
/// order with FIFO tie-breaking, and cancellable entries are voided in
/// O(1) without perturbing the order of survivors.
pub trait EventSchedule<E> {
    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` precedes the current simulation time.
    fn schedule(&mut self, time: SimTime, payload: E);

    /// Schedules `payload` at `now + dt`.
    fn schedule_in(&mut self, dt: f64, payload: E);

    /// Schedules `payload` at `time` and returns a cancellation key.
    ///
    /// # Panics
    /// Panics if `time` precedes the current simulation time.
    fn schedule_cancellable(&mut self, time: SimTime, payload: E) -> EventKey;

    /// Schedules a cancellable `payload` at `now + dt`.
    fn schedule_cancellable_in(&mut self, dt: f64, payload: E) -> EventKey;

    /// Voids a cancellable entry; `true` if it was still pending.
    fn cancel(&mut self, key: EventKey) -> bool;

    /// Pops the earliest surviving event, advancing the clock to its
    /// timestamp.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// Timestamp of the next surviving event without popping.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Current simulation time (time of the last popped event).
    fn now(&self) -> SimTime;

    /// Number of pending (non-cancelled) events.
    fn len(&self) -> usize;

    /// True if no non-cancelled events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events scheduled over the list's lifetime.
    fn scheduled(&self) -> u64;

    /// Total events popped (processed) over the list's lifetime.
    fn popped(&self) -> u64;

    /// Total entries cancelled over the list's lifetime.
    fn cancelled(&self) -> u64;

    /// Records the list's lifetime totals into an observability registry.
    fn observe_into(&self, registry: &quorum_obs::Registry);
}

impl<E> EventSchedule<E> for EventQueue<E> {
    fn schedule(&mut self, time: SimTime, payload: E) {
        EventQueue::schedule(self, time, payload);
    }
    fn schedule_in(&mut self, dt: f64, payload: E) {
        EventQueue::schedule_in(self, dt, payload);
    }
    fn schedule_cancellable(&mut self, time: SimTime, payload: E) -> EventKey {
        EventQueue::schedule_cancellable(self, time, payload)
    }
    fn schedule_cancellable_in(&mut self, dt: f64, payload: E) -> EventKey {
        EventQueue::schedule_cancellable_in(self, dt, payload)
    }
    fn cancel(&mut self, key: EventKey) -> bool {
        EventQueue::cancel(self, key)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn scheduled(&self) -> u64 {
        EventQueue::scheduled(self)
    }
    fn popped(&self) -> u64 {
        EventQueue::popped(self)
    }
    fn cancelled(&self) -> u64 {
        EventQueue::cancelled(self)
    }
    fn observe_into(&self, registry: &quorum_obs::Registry) {
        EventQueue::observe_into(self, registry);
    }
}

impl<E> EventSchedule<E> for CalendarQueue<E> {
    fn schedule(&mut self, time: SimTime, payload: E) {
        CalendarQueue::schedule(self, time, payload);
    }
    fn schedule_in(&mut self, dt: f64, payload: E) {
        CalendarQueue::schedule_in(self, dt, payload);
    }
    fn schedule_cancellable(&mut self, time: SimTime, payload: E) -> EventKey {
        CalendarQueue::schedule_cancellable(self, time, payload)
    }
    fn schedule_cancellable_in(&mut self, dt: f64, payload: E) -> EventKey {
        CalendarQueue::schedule_cancellable_in(self, dt, payload)
    }
    fn cancel(&mut self, key: EventKey) -> bool {
        CalendarQueue::cancel(self, key)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        CalendarQueue::pop(self)
    }
    fn peek_time(&mut self) -> Option<SimTime> {
        CalendarQueue::peek_time(self)
    }
    fn now(&self) -> SimTime {
        CalendarQueue::now(self)
    }
    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }
    fn scheduled(&self) -> u64 {
        CalendarQueue::scheduled(self)
    }
    fn popped(&self) -> u64 {
        CalendarQueue::popped(self)
    }
    fn cancelled(&self) -> u64 {
        CalendarQueue::cancelled(self)
    }
    fn observe_into(&self, registry: &quorum_obs::Registry) {
        CalendarQueue::observe_into(self, registry);
    }
}
