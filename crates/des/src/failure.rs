//! Alternating up/down renewal processes for sites and links.
//!
//! §5.1–5.2: components are fail-stop with exponential time-to-failure
//! (mean `μ_f`) and exponential time-to-repair (mean `μ_r`); "each component
//! is 96 % reliable", i.e. `μ_f / (μ_f + μ_r) = 0.96`. The long-run
//! fraction of time up for such an alternating renewal process is exactly
//! that ratio.

use quorum_stats::rng::exponential;
use rand::Rng;

/// Shape of an up- or down-duration distribution (mean fixed by the
/// process).
///
/// The paper's model is all-exponential (§5.2); the alternatives support
/// the sensitivity ablation in DESIGN.md — how much do the availability
/// conclusions depend on the memoryless assumption?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurationDist {
    /// Exponential (the paper's Poisson model).
    Exponential,
    /// Deterministic: every duration equals the mean.
    Fixed,
    /// Uniform on `[0, 2·mean]` (same mean, lower variance than
    /// exponential).
    Uniform,
}

impl DurationDist {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R, mean: f64) -> f64 {
        match self {
            DurationDist::Exponential => exponential(rng, 1.0 / mean),
            DurationDist::Fixed => mean,
            DurationDist::Uniform => 2.0 * mean * rng.random::<f64>(),
        }
    }
}

/// An alternating up/down renewal process.
#[derive(Debug, Clone, Copy)]
pub struct OnOffProcess {
    /// Mean up duration (time-to-failure).
    mu_fail: f64,
    /// Mean down duration (time-to-repair).
    mu_repair: f64,
    /// Up-duration distribution shape.
    fail_dist: DurationDist,
    /// Down-duration distribution shape.
    repair_dist: DurationDist,
    /// Current state.
    up: bool,
}

impl OnOffProcess {
    /// Creates a process that starts up.
    ///
    /// # Panics
    /// Panics unless both means are positive and finite.
    pub fn new(mu_fail: f64, mu_repair: f64) -> Self {
        assert!(mu_fail > 0.0 && mu_fail.is_finite(), "μ_f must be positive");
        assert!(
            mu_repair > 0.0 && mu_repair.is_finite(),
            "μ_r must be positive"
        );
        Self {
            mu_fail,
            mu_repair,
            fail_dist: DurationDist::Exponential,
            repair_dist: DurationDist::Exponential,
            up: true,
        }
    }

    /// Overrides the duration distribution shapes (means unchanged, so the
    /// long-run reliability is unchanged too — the renewal-reward ratio
    /// depends only on the means).
    pub fn with_distributions(mut self, fail: DurationDist, repair: DurationDist) -> Self {
        self.fail_dist = fail;
        self.repair_dist = repair;
        self
    }

    /// Creates a process from a target long-run `reliability` and a mean
    /// time-to-failure, solving `μ_r = μ_f (1 − rel) / rel`.
    ///
    /// # Panics
    /// Panics unless `0 < reliability < 1`.
    pub fn from_reliability(reliability: f64, mu_fail: f64) -> Self {
        assert!(
            reliability > 0.0 && reliability < 1.0,
            "reliability must lie in (0,1), got {reliability}"
        );
        let mu_repair = mu_fail * (1.0 - reliability) / reliability;
        Self::new(mu_fail, mu_repair)
    }

    /// Whether the process is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Long-run fraction of time up.
    pub fn reliability(&self) -> f64 {
        self.mu_fail / (self.mu_fail + self.mu_repair)
    }

    /// Mean time-to-failure.
    pub fn mu_fail(&self) -> f64 {
        self.mu_fail
    }

    /// Mean time-to-repair.
    pub fn mu_repair(&self) -> f64 {
        self.mu_repair
    }

    /// Samples the time until the next transition from the current state,
    /// then toggles the state. Returns `(gap, new_state_is_up)`.
    pub fn next_transition<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (f64, bool) {
        let gap = if self.up {
            self.fail_dist.sample(rng, self.mu_fail)
        } else {
            self.repair_dist.sample(rng, self.mu_repair)
        };
        self.up = !self.up;
        (gap, self.up)
    }

    /// Resets to the up state (start of a fresh batch).
    pub fn reset_up(&mut self) {
        self.up = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_stats::rng::rng_from_seed;

    #[test]
    fn from_reliability_solves_mu_repair() {
        let p = OnOffProcess::from_reliability(0.96, 128.0);
        assert!((p.mu_repair() - 128.0 * 0.04 / 0.96).abs() < 1e-9);
        assert!((p.reliability() - 0.96).abs() < 1e-12);
    }

    #[test]
    fn transitions_alternate() {
        let mut p = OnOffProcess::new(10.0, 1.0);
        let mut rng = rng_from_seed(3);
        assert!(p.is_up());
        let (_, s1) = p.next_transition(&mut rng);
        assert!(!s1);
        let (_, s2) = p.next_transition(&mut rng);
        assert!(s2);
    }

    #[test]
    fn long_run_up_fraction_matches_reliability() {
        let mut p = OnOffProcess::from_reliability(0.96, 128.0);
        let mut rng = rng_from_seed(17);
        let mut t_up = 0.0;
        let mut t_total = 0.0;
        for _ in 0..200_000 {
            let was_up = p.is_up();
            let (gap, _) = p.next_transition(&mut rng);
            if was_up {
                t_up += gap;
            }
            t_total += gap;
        }
        let frac = t_up / t_total;
        assert!((frac - 0.96).abs() < 0.005, "up fraction {frac}");
    }

    #[test]
    fn reset_restores_up() {
        let mut p = OnOffProcess::new(1.0, 1.0);
        let mut rng = rng_from_seed(0);
        p.next_transition(&mut rng);
        assert!(!p.is_up());
        p.reset_up();
        assert!(p.is_up());
    }

    #[test]
    #[should_panic(expected = "reliability must lie")]
    fn bad_reliability_rejected() {
        OnOffProcess::from_reliability(1.0, 10.0);
    }

    #[test]
    fn fixed_durations_are_deterministic() {
        let mut p = OnOffProcess::new(10.0, 2.0)
            .with_distributions(DurationDist::Fixed, DurationDist::Fixed);
        let mut rng = rng_from_seed(1);
        assert_eq!(p.next_transition(&mut rng), (10.0, false));
        assert_eq!(p.next_transition(&mut rng), (2.0, true));
        assert_eq!(p.next_transition(&mut rng), (10.0, false));
    }

    #[test]
    fn alternative_distributions_preserve_reliability() {
        // Long-run up fraction depends only on the means (renewal-reward),
        // so every shape must land at 96%.
        for (fd, rd) in [
            (DurationDist::Fixed, DurationDist::Exponential),
            (DurationDist::Uniform, DurationDist::Uniform),
            (DurationDist::Exponential, DurationDist::Fixed),
        ] {
            let mut p = OnOffProcess::from_reliability(0.96, 128.0).with_distributions(fd, rd);
            let mut rng = rng_from_seed(33);
            let mut t_up = 0.0;
            let mut t_total = 0.0;
            for _ in 0..100_000 {
                let was_up = p.is_up();
                let (gap, _) = p.next_transition(&mut rng);
                if was_up {
                    t_up += gap;
                }
                t_total += gap;
            }
            let frac = t_up / t_total;
            assert!((frac - 0.96).abs() < 0.005, "{fd:?}/{rd:?}: {frac}");
        }
    }

    #[test]
    fn uniform_durations_have_matching_mean() {
        let mut p = OnOffProcess::new(8.0, 8.0)
            .with_distributions(DurationDist::Uniform, DurationDist::Uniform);
        let mut rng = rng_from_seed(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| p.next_transition(&mut rng).0).sum::<f64>() / n as f64;
        assert!((mean - 8.0).abs() < 0.05, "mean {mean}");
    }
}
