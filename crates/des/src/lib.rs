//! Discrete-event simulation engine.
//!
//! The paper's evaluation (§5.2) uses a steady-state discrete event
//! simulator: access submissions are a Poisson process per site with mean
//! inter-access time `μ_t = 1`; site and link failures/recoveries are
//! Poisson with mean time-to-failure `μ_f` and mean time-to-repair `μ_r`
//! chosen so each component is 96 % reliable and the access-to-failure time
//! ratio is `ρ = μ_t / μ_f = 1/128`. All events are instantaneous.
//!
//! This crate supplies the engine pieces:
//!
//! * [`SimTime`] — totally-ordered simulation timestamps.
//! * [`EventQueue`] — a deterministic future-event list (min-heap with FIFO
//!   tie-breaking); the reference implementation.
//! * [`CalendarQueue`] — the amortized-O(1) calendar-queue future-event
//!   list, pop-for-pop identical to the heap.
//! * [`EventSchedule`] — the trait both lists implement, so simulators
//!   are written once and run on either.
//! * [`PoissonProcess`] — exponential inter-arrival sampling.
//! * [`OnOffProcess`] — the alternating up/down renewal process driving each
//!   site and link.
//! * [`SimParams`] — the paper's parameter set with derived `μ_f`, `μ_r`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod event;
pub mod failure;
pub mod params;
pub mod poisson;
pub mod schedule;
pub mod time;

pub use calendar::CalendarQueue;
pub use event::{EventKey, EventQueue};
pub use failure::{DurationDist, OnOffProcess};
pub use params::{ci_points, SimParams};
pub use poisson::PoissonProcess;
pub use schedule::EventSchedule;
pub use time::SimTime;
