//! Poisson arrival processes.

use quorum_stats::rng::exponential;
use rand::Rng;

/// A homogeneous Poisson process: exponential inter-arrival times with the
/// given rate (`rate = 1/μ` where `μ` is the mean inter-arrival time).
///
/// The paper models per-site access submission as Poisson with mean
/// `μ_t = 1` (§5.2), i.e. `rate = 1`.
#[derive(Debug, Clone, Copy)]
pub struct PoissonProcess {
    rate: f64,
}

impl PoissonProcess {
    /// Creates a process with the given arrival `rate`.
    ///
    /// # Panics
    /// Panics unless `rate` is positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Self { rate }
    }

    /// Creates a process from its mean inter-arrival time.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        Self::new(1.0 / mean)
    }

    /// Arrival rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean inter-arrival time.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Samples the next inter-arrival gap.
    pub fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        exponential(rng, self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_stats::rng::rng_from_seed;

    #[test]
    fn mean_and_rate_are_inverse() {
        let p = PoissonProcess::with_mean(4.0);
        assert!((p.rate() - 0.25).abs() < 1e-12);
        assert!((p.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_mean_gap() {
        let p = PoissonProcess::new(2.0);
        let mut rng = rng_from_seed(11);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng)).sum();
        assert!((total / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn count_in_unit_interval_is_poisson_distributed() {
        // Mean number of arrivals in [0, 1) should be ≈ rate; variance too.
        let p = PoissonProcess::new(3.0);
        let mut rng = rng_from_seed(5);
        let trials = 20_000;
        let mut counts = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut t = 0.0;
            let mut c = 0u32;
            loop {
                t += p.next_gap(&mut rng);
                if t >= 1.0 {
                    break;
                }
                c += 1;
            }
            counts.push(c as f64);
        }
        let mean: f64 = counts.iter().sum::<f64>() / trials as f64;
        let var: f64 = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / (trials - 1) as f64;
        assert!((mean - 3.0).abs() < 0.06, "mean {mean}");
        assert!((var - 3.0).abs() < 0.15, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_rate_rejected() {
        PoissonProcess::new(0.0);
    }
}
