//! The run manifest: a self-describing record of one benchmark or
//! simulation run, sufficient to reproduce it (seed + parameters +
//! topology + votes) and to compare it against another run (timings,
//! event counts, cache behavior, CI-convergence trace).
//!
//! Manifests serialize to pretty JSON (deterministic key order, so two
//! manifests diff cleanly) and to a flattened `key,value` CSV. Parsing
//! is supported so CI smoke checks and tests can assert on emitted
//! fields without regex scraping.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::json::{self, JsonValue};
use crate::registry::Snapshot;

/// Version stamp written into every manifest; bump on breaking schema
/// changes so downstream tooling can dispatch.
pub const SCHEMA_VERSION: u32 = 1;

/// Flat mirror of the simulator's `SimParams` (§5.2 of the paper).
///
/// `quorum-obs` sits below every other crate, so this record holds plain
/// values; the producing crate converts its own `SimParams` into it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimParamsRecord {
    /// Mean time between accesses submitted by one site (`μ_t`).
    pub mu_access: f64,
    /// Ratio `ρ = μ_t / μ_f`.
    pub rho: f64,
    /// Long-run per-component reliability.
    pub reliability: f64,
    /// Accesses discarded before measurement.
    pub warmup_accesses: u64,
    /// Accesses measured per batch.
    pub batch_accesses: u64,
    /// Minimum batches per run.
    pub min_batches: u64,
    /// Maximum batches per run.
    pub max_batches: u64,
    /// Confidence level for the availability interval.
    pub confidence: f64,
    /// Target CI half-width.
    pub ci_half_width: f64,
    /// Up-duration distribution name.
    pub fail_dist: String,
    /// Down-duration distribution name.
    pub repair_dist: String,
}

/// Shape of the simulated network.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TopologyRecord {
    /// Human-readable label, e.g. `"paper-topology-16"`.
    pub label: String,
    /// Number of sites.
    pub sites: u64,
    /// Number of links.
    pub links: u64,
    /// Chords added beyond the ring (the paper's topology index).
    pub chords: u64,
}

/// One point of the batch-means convergence trace: after `batches`
/// batches the availability estimate was `mean ± half_width`.
#[derive(Debug, Clone, PartialEq)]
pub struct CiPoint {
    /// Batches accumulated so far.
    pub batches: u64,
    /// Point estimate after those batches.
    pub mean: f64,
    /// 95 % CI half-width after those batches.
    pub half_width: f64,
}

/// A named bucketed histogram, e.g. a session-latency distribution from
/// the message-level cluster engine.
///
/// Buckets are defined by `bounds` (ascending upper edges): `counts[i]`
/// observations fell in `[bounds[i-1], bounds[i])` (with `bounds[-1] = 0`),
/// and `counts` has one extra trailing entry for the overflow bucket
/// `[bounds.last(), ∞)`, so `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramRecord {
    /// Histogram name, e.g. `"cluster.read_latency"`.
    pub name: String,
    /// Ascending bucket upper edges.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (one more than `bounds`).
    pub counts: Vec<u64>,
}

impl HistogramRecord {
    /// Total observations across all buckets.
    pub fn observations(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Wall-clock spent in one named phase of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase name, e.g. `"simulate"`, `"curves"`, `"optimize"`.
    pub phase: String,
    /// Total seconds spent in the phase.
    pub seconds: f64,
    /// Times the phase was entered.
    pub activations: u64,
}

/// Everything needed to reproduce and compare one run.
///
/// Ownership convention for [`RunManifest::counters`]: the registry
/// snapshot is the **single source** — producers publish totals into a
/// [`crate::Registry`] and the driver calls [`RunManifest::absorb_snapshot`]
/// exactly once. Result-struct `fill_manifest` helpers must write only
/// metrics, histograms, batch counts, and CI traces, never counters;
/// writing a counter from both paths silently doubles it in the emitted
/// manifest (absorption *adds*, to allow multi-registry merges).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunManifest {
    /// Name of the producing binary (e.g. `"validate_curves"`).
    pub bin: String,
    /// Base RNG seed for the run.
    pub seed: u64,
    /// Simulation parameters.
    pub params: SimParamsRecord,
    /// Network shape.
    pub topology: TopologyRecord,
    /// Vote assignment, one entry per site (empty if not applicable).
    pub votes: Vec<u64>,
    /// Batches executed (summed over jobs for multi-run benches).
    pub batches: u64,
    /// Batch-means convergence trace (possibly from a representative job).
    pub ci_trace: Vec<CiPoint>,
    /// Per-phase wall-clock timings.
    pub phases: Vec<PhaseTiming>,
    /// Named bucketed histograms (latency distributions and the like).
    /// Absent in manifests written before this field existed; parsing
    /// treats a missing key as empty.
    pub histograms: Vec<HistogramRecord>,
    /// Counter values (DES events, cache hits/recomputes, …), keyed by
    /// the [`crate::keys`] names.
    pub counters: BTreeMap<String, u64>,
    /// Free-form numeric results (availabilities, speedups, rates).
    pub metrics: BTreeMap<String, f64>,
}

impl RunManifest {
    /// Creates an empty manifest for binary `bin` with `seed`.
    pub fn new(bin: &str, seed: u64) -> Self {
        Self {
            bin: bin.to_string(),
            seed,
            ..Self::default()
        }
    }

    /// Copies every counter and timer out of a registry snapshot:
    /// counters land in [`RunManifest::counters`], timers become
    /// [`PhaseTiming`] entries (appended in name order).
    pub fn absorb_snapshot(&mut self, snap: &Snapshot) {
        for (name, value) in &snap.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, &(nanos, activations)) in &snap.timers {
            self.phases.push(PhaseTiming {
                phase: name.clone(),
                seconds: nanos as f64 / 1e9,
                activations,
            });
        }
        for (name, &value) in &snap.gauges {
            self.metrics.insert(name.clone(), value);
        }
    }

    /// Records a free-form numeric metric.
    pub fn set_metric(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_string(), value);
    }

    /// Counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total seconds recorded for phase `name`, or 0.
    pub fn phase_secs(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.phase == name)
            .map(|p| p.seconds)
            .sum()
    }

    /// Serializes to the JSON document model.
    pub fn to_json(&self) -> JsonValue {
        let mut root = JsonValue::object();
        root.insert("schema_version", JsonValue::Int(SCHEMA_VERSION as u64));
        root.insert("bin", JsonValue::Str(self.bin.clone()));
        root.insert("seed", JsonValue::Int(self.seed));

        let mut params = JsonValue::object();
        params.insert("mu_access", JsonValue::Num(self.params.mu_access));
        params.insert("rho", JsonValue::Num(self.params.rho));
        params.insert("reliability", JsonValue::Num(self.params.reliability));
        params.insert(
            "warmup_accesses",
            JsonValue::Int(self.params.warmup_accesses),
        );
        params.insert("batch_accesses", JsonValue::Int(self.params.batch_accesses));
        params.insert("min_batches", JsonValue::Int(self.params.min_batches));
        params.insert("max_batches", JsonValue::Int(self.params.max_batches));
        params.insert("confidence", JsonValue::Num(self.params.confidence));
        params.insert("ci_half_width", JsonValue::Num(self.params.ci_half_width));
        params.insert("fail_dist", JsonValue::Str(self.params.fail_dist.clone()));
        params.insert(
            "repair_dist",
            JsonValue::Str(self.params.repair_dist.clone()),
        );
        root.insert("params", params);

        let mut topo = JsonValue::object();
        topo.insert("label", JsonValue::Str(self.topology.label.clone()));
        topo.insert("sites", JsonValue::Int(self.topology.sites));
        topo.insert("links", JsonValue::Int(self.topology.links));
        topo.insert("chords", JsonValue::Int(self.topology.chords));
        root.insert("topology", topo);

        root.insert(
            "votes",
            JsonValue::Array(self.votes.iter().map(|&v| JsonValue::Int(v)).collect()),
        );
        root.insert("batches", JsonValue::Int(self.batches));

        root.insert(
            "ci_trace",
            JsonValue::Array(
                self.ci_trace
                    .iter()
                    .map(|p| {
                        let mut o = JsonValue::object();
                        o.insert("batches", JsonValue::Int(p.batches));
                        o.insert("mean", JsonValue::Num(p.mean));
                        o.insert("half_width", JsonValue::Num(p.half_width));
                        o
                    })
                    .collect(),
            ),
        );

        root.insert(
            "phases",
            JsonValue::Array(
                self.phases
                    .iter()
                    .map(|p| {
                        let mut o = JsonValue::object();
                        o.insert("phase", JsonValue::Str(p.phase.clone()));
                        o.insert("seconds", JsonValue::Num(p.seconds));
                        o.insert("activations", JsonValue::Int(p.activations));
                        o
                    })
                    .collect(),
            ),
        );

        root.insert(
            "histograms",
            JsonValue::Array(
                self.histograms
                    .iter()
                    .map(|h| {
                        let mut o = JsonValue::object();
                        o.insert("name", JsonValue::Str(h.name.clone()));
                        o.insert(
                            "bounds",
                            JsonValue::Array(h.bounds.iter().map(|&b| JsonValue::Num(b)).collect()),
                        );
                        o.insert(
                            "counts",
                            JsonValue::Array(h.counts.iter().map(|&c| JsonValue::Int(c)).collect()),
                        );
                        o
                    })
                    .collect(),
            ),
        );

        let mut counters = JsonValue::object();
        for (name, &value) in &self.counters {
            counters.insert(name, JsonValue::Int(value));
        }
        root.insert("counters", counters);

        let mut metrics = JsonValue::object();
        for (name, &value) in &self.metrics {
            metrics.insert(name, JsonValue::Num(value));
        }
        root.insert("metrics", metrics);

        root
    }

    /// Reconstructs a manifest from its JSON form.
    pub fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let get = |key: &str| doc.get(key).ok_or_else(|| format!("missing '{key}'"));
        let version = get("schema_version")?
            .as_u64()
            .ok_or("schema_version not an integer")?;
        if version != SCHEMA_VERSION as u64 {
            return Err(format!("unsupported schema_version {version}"));
        }
        let str_field = |v: &JsonValue, key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string '{key}'"))
        };
        let u64_field = |v: &JsonValue, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing integer '{key}'"))
        };
        let f64_field = |v: &JsonValue, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing number '{key}'"))
        };

        let p = get("params")?;
        let params = SimParamsRecord {
            mu_access: f64_field(p, "mu_access")?,
            rho: f64_field(p, "rho")?,
            reliability: f64_field(p, "reliability")?,
            warmup_accesses: u64_field(p, "warmup_accesses")?,
            batch_accesses: u64_field(p, "batch_accesses")?,
            min_batches: u64_field(p, "min_batches")?,
            max_batches: u64_field(p, "max_batches")?,
            confidence: f64_field(p, "confidence")?,
            ci_half_width: f64_field(p, "ci_half_width")?,
            fail_dist: str_field(p, "fail_dist")?,
            repair_dist: str_field(p, "repair_dist")?,
        };

        let t = get("topology")?;
        let topology = TopologyRecord {
            label: str_field(t, "label")?,
            sites: u64_field(t, "sites")?,
            links: u64_field(t, "links")?,
            chords: u64_field(t, "chords")?,
        };

        let votes = get("votes")?
            .as_array()
            .ok_or("votes not an array")?
            .iter()
            .map(|v| v.as_u64().ok_or("vote not an integer"))
            .collect::<Result<Vec<_>, _>>()?;

        let ci_trace = get("ci_trace")?
            .as_array()
            .ok_or("ci_trace not an array")?
            .iter()
            .map(|p| {
                Ok(CiPoint {
                    batches: u64_field(p, "batches")?,
                    mean: f64_field(p, "mean")?,
                    half_width: f64_field(p, "half_width")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;

        let phases = get("phases")?
            .as_array()
            .ok_or("phases not an array")?
            .iter()
            .map(|p| {
                Ok(PhaseTiming {
                    phase: str_field(p, "phase")?,
                    seconds: f64_field(p, "seconds")?,
                    activations: u64_field(p, "activations")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;

        // Tolerant: manifests written before this field existed parse as
        // having no histograms.
        let histograms = match doc.get("histograms") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or("histograms not an array")?
                .iter()
                .map(|h| {
                    let bounds = h
                        .get("bounds")
                        .and_then(JsonValue::as_array)
                        .ok_or("histogram missing 'bounds'")?
                        .iter()
                        .map(|b| b.as_f64().ok_or("bound not a number"))
                        .collect::<Result<Vec<_>, _>>()?;
                    let counts = h
                        .get("counts")
                        .and_then(JsonValue::as_array)
                        .ok_or("histogram missing 'counts'")?
                        .iter()
                        .map(|c| c.as_u64().ok_or("count not an integer"))
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(HistogramRecord {
                        name: str_field(h, "name")?,
                        bounds,
                        counts,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        };

        let counters = match get("counters")? {
            JsonValue::Object(map) => map
                .iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|v| (k.clone(), v))
                        .ok_or_else(|| format!("counter '{k}' not an integer"))
                })
                .collect::<Result<BTreeMap<_, _>, _>>()?,
            _ => return Err("counters not an object".into()),
        };

        let metrics = match get("metrics")? {
            JsonValue::Object(map) => map
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|v| (k.clone(), v))
                        .ok_or_else(|| format!("metric '{k}' not a number"))
                })
                .collect::<Result<BTreeMap<_, _>, _>>()?,
            _ => return Err("metrics not an object".into()),
        };

        Ok(Self {
            bin: str_field(doc, "bin")?,
            seed: u64_field(doc, "seed")?,
            params,
            topology,
            votes,
            batches: u64_field(doc, "batches")?,
            ci_trace,
            phases,
            histograms,
            counters,
            metrics,
        })
    }

    /// Parses a manifest from JSON text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&doc)
    }

    /// Writes the manifest as pretty JSON to `path`. If `path` ends in
    /// `.csv` the flattened CSV form is written instead, so one
    /// `--manifest` flag serves both formats.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let doc = self.to_json();
        let text = if path.extension().is_some_and(|e| e == "csv") {
            json::to_csv(&doc)
        } else {
            doc.to_string_pretty()
        };
        std::fs::write(path, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("validate_curves", 12_345);
        m.params = SimParamsRecord {
            mu_access: 1.0,
            rho: 1.0 / 128.0,
            reliability: 0.96,
            warmup_accesses: 5_000,
            batch_accesses: 30_000,
            min_batches: 3,
            max_batches: 6,
            confidence: 0.95,
            ci_half_width: 0.02,
            fail_dist: "exponential".into(),
            repair_dist: "exponential".into(),
        };
        m.topology = TopologyRecord {
            label: "paper-topology-16".into(),
            sites: 101,
            links: 117,
            chords: 16,
        };
        m.votes = vec![1; 101];
        m.batches = 4;
        m.ci_trace = vec![
            CiPoint {
                batches: 3,
                mean: 0.94,
                half_width: 0.03,
            },
            CiPoint {
                batches: 4,
                mean: 0.945,
                half_width: 0.015,
            },
        ];
        m.phases = vec![PhaseTiming {
            phase: "simulate".into(),
            seconds: 1.25,
            activations: 1,
        }];
        m.histograms = vec![HistogramRecord {
            name: "cluster.read_latency".into(),
            bounds: vec![0.5, 1.0, 2.0],
            counts: vec![10, 25, 7, 1],
        }];
        m.counters.insert(crate::keys::DES_EVENTS.into(), 1_000);
        m.counters.insert(crate::keys::CACHE_HITS.into(), 900);
        m.metrics.insert("availability".into(), 0.945);
        m
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let m = sample();
        let text = m.to_json().to_string_pretty();
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn compact_round_trip_is_lossless_too() {
        let m = sample();
        let back = RunManifest::parse(&m.to_json().to_string_compact()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn absorb_snapshot_moves_counters_timers_gauges() {
        let r = Registry::new();
        r.add(crate::keys::DES_EVENTS, 7);
        r.record_duration("simulate", std::time::Duration::from_millis(250));
        r.set_gauge("threads.utilization", 0.8);
        let mut m = RunManifest::new("test", 1);
        m.counters.insert(crate::keys::DES_EVENTS.into(), 3);
        m.absorb_snapshot(&r.snapshot());
        assert_eq!(m.counter(crate::keys::DES_EVENTS), 10);
        assert!((m.phase_secs("simulate") - 0.25).abs() < 1e-9);
        assert_eq!(m.phases[0].activations, 1);
        assert_eq!(m.metrics["threads.utilization"], 0.8);
    }

    #[test]
    fn manifests_without_histograms_still_parse() {
        // Backwards compatibility: pre-histogram manifests omit the key.
        let mut doc = sample().to_json();
        if let JsonValue::Object(map) = &mut doc {
            map.remove("histograms");
        }
        let back = RunManifest::from_json(&doc).unwrap();
        assert!(back.histograms.is_empty());
        let mut expected = sample();
        expected.histograms.clear();
        assert_eq!(back, expected);
    }

    #[test]
    fn histogram_observations_sum_counts() {
        let h = sample().histograms[0].clone();
        assert_eq!(h.observations(), 43);
        assert_eq!(h.counts.len(), h.bounds.len() + 1);
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let mut doc = sample().to_json();
        if let JsonValue::Object(map) = &mut doc {
            map.remove("seed");
        }
        let err = RunManifest::from_json(&doc).unwrap_err();
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn schema_version_is_checked() {
        let mut doc = sample().to_json();
        doc.insert("schema_version", JsonValue::Int(999));
        assert!(RunManifest::from_json(&doc).unwrap_err().contains("999"));
    }

    #[test]
    fn write_to_csv_flattens() {
        let dir = std::env::temp_dir();
        let path = dir.join("quorum_obs_manifest_test.csv");
        sample().write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("key,value\n"));
        assert!(text.contains("seed,12345\n"));
        assert!(text.contains("topology.chords,16\n"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_to_json_parses_back() {
        let dir = std::env::temp_dir();
        let path = dir.join("quorum_obs_manifest_test.json");
        sample().write_to(&path).unwrap();
        let back = RunManifest::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, sample());
        let _ = std::fs::remove_file(&path);
    }
}
