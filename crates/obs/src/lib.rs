//! Structured, near-zero-cost observability for the quorum workspace.
//!
//! The paper's central loop — estimate `f_i(v)` on-line, run the Figure-1
//! optimizer, compare ACC/SURV against the §5 simulation — is a
//! long-running stochastic pipeline. Without instrumentation a run is
//! unverifiable: seeds, event counts, cache behavior, and CI-convergence
//! traces all vanish into a text table. This crate provides the
//! measurement substrate every perf-oriented change reports against:
//!
//! * [`Registry`] — a thread-safe bank of named atomic counters, gauges,
//!   and monotonic timers. Counter increments are a single relaxed atomic
//!   add on the hot path; creation/lookup cost is paid once per handle.
//! * [`ScopedTimer`] — an RAII guard accumulating wall-clock into a
//!   registry timer.
//! * [`RunManifest`] — everything needed to reproduce and compare a run:
//!   seed, simulation parameters, topology descriptor, vote assignment,
//!   batch count, CI half-width trace, per-phase wall-clock, component
//!   cache hit/recompute rates, and DES event counts.
//! * [`json`] — a hand-rolled JSON value model, writer, and parser (no
//!   third-party dependencies, so offline builds keep working), plus CSV
//!   flattening for spreadsheet-side diffing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod manifest;
pub mod registry;

pub use json::JsonValue;
pub use manifest::{
    CiPoint, HistogramRecord, PhaseTiming, RunManifest, SimParamsRecord, TopologyRecord,
};
pub use registry::{Counter, Registry, ScopedTimer, Snapshot};

/// Conventional metric names shared by the instrumented crates — see
/// the module docs; `quorum-lint` enforces the registry contract.
pub mod keys;
