//! Structured, near-zero-cost observability for the quorum workspace.
//!
//! The paper's central loop — estimate `f_i(v)` on-line, run the Figure-1
//! optimizer, compare ACC/SURV against the §5 simulation — is a
//! long-running stochastic pipeline. Without instrumentation a run is
//! unverifiable: seeds, event counts, cache behavior, and CI-convergence
//! traces all vanish into a text table. This crate provides the
//! measurement substrate every perf-oriented change reports against:
//!
//! * [`Registry`] — a thread-safe bank of named atomic counters, gauges,
//!   and monotonic timers. Counter increments are a single relaxed atomic
//!   add on the hot path; creation/lookup cost is paid once per handle.
//! * [`ScopedTimer`] — an RAII guard accumulating wall-clock into a
//!   registry timer.
//! * [`RunManifest`] — everything needed to reproduce and compare a run:
//!   seed, simulation parameters, topology descriptor, vote assignment,
//!   batch count, CI half-width trace, per-phase wall-clock, component
//!   cache hit/recompute rates, and DES event counts.
//! * [`json`] — a hand-rolled JSON value model, writer, and parser (no
//!   third-party dependencies, so offline builds keep working), plus CSV
//!   flattening for spreadsheet-side diffing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod manifest;
pub mod registry;

pub use json::JsonValue;
pub use manifest::{
    CiPoint, HistogramRecord, PhaseTiming, RunManifest, SimParamsRecord, TopologyRecord,
};
pub use registry::{Counter, Registry, ScopedTimer, Snapshot};

/// Conventional metric names shared by the instrumented crates, so that
/// producers (simulator, cache, estimator) and consumers (manifest
/// writers, CI smoke checks) agree without string drift.
pub mod keys {
    /// DES events popped from the future-event list.
    pub const DES_EVENTS: &str = "des.events_processed";
    /// Site up/down transitions applied.
    pub const DES_SITE_TRANSITIONS: &str = "des.site_transitions";
    /// Link up/down transitions applied.
    pub const DES_LINK_TRANSITIONS: &str = "des.link_transitions";
    /// Accesses submitted (warm-up + measured).
    pub const DES_ACCESSES: &str = "des.accesses";
    /// Cancelled-timer tombstones still resident in the event list at
    /// observation time (gauge).
    pub const DES_QUEUE_TOMBSTONES: &str = "des.queue_tombstones";
    /// Tombstone compaction sweeps performed by the event list.
    pub const DES_QUEUE_COMPACTIONS: &str = "des.queue_compactions";
    /// Objects simulated by the sharded throughput engine.
    pub const SHARD_OBJECTS: &str = "shard.objects";
    /// Shards the object space was partitioned into.
    pub const SHARD_SHARDS: &str = "shard.shards";
    /// Accesses dispatched across all objects (reads + writes).
    pub const SHARD_ACCESSES: &str = "shard.accesses";
    /// Connectivity epochs in the shared failure timeline.
    pub const SHARD_EPOCHS: &str = "shard.epochs";
    /// Assignment profiles (grant rows per epoch) in the timeline.
    pub const SHARD_ASSIGNMENTS: &str = "shard.assignments";
    /// Reads granted across all objects.
    pub const SHARD_READS_GRANTED: &str = "shard.reads_granted";
    /// Writes granted across all objects.
    pub const SHARD_WRITES_GRANTED: &str = "shard.writes_granted";
    /// Reads submitted across all objects.
    pub const SHARD_READS_SUBMITTED: &str = "shard.reads_submitted";
    /// Writes submitted across all objects.
    pub const SHARD_WRITES_SUBMITTED: &str = "shard.writes_submitted";
    /// Component-cache queries served without a BFS.
    pub const CACHE_HITS: &str = "graph.component_cache.hits";
    /// Component-cache queries that recomputed the BFS.
    pub const CACHE_RECOMPUTATIONS: &str = "graph.component_cache.recomputations";
    /// Topology events the incremental kernel absorbed by merging
    /// components (recoveries; no BFS).
    pub const DELTA_MERGES: &str = "graph.delta_merges";
    /// Topology events absorbed by re-scanning one component (failures).
    pub const DELTA_RESCANS: &str = "graph.delta_rescans";
    /// Topology events filtered as provably partition-preserving.
    pub const DELTA_NOOPS: &str = "graph.delta_noops";
    /// Topology events absorbed by rebuilding the kernel from scratch.
    pub const FULL_RECOMPUTES: &str = "graph.full_recomputes";
    /// Batches executed by a runner.
    pub const RUN_BATCHES: &str = "replica.batches";
    /// Worker threads the runner used.
    pub const RUN_THREADS: &str = "replica.threads";
    /// Observations recorded into estimator histograms.
    pub const ESTIMATOR_OBSERVATIONS: &str = "core.estimator.observations";
    /// Objective evaluations spent by optimizer argmax sweeps.
    pub const OPTIMIZER_EVALUATIONS: &str = "core.optimizer.evaluations";
    /// Messages sent by cluster sites (all types, including retries).
    pub const CLUSTER_MESSAGES_SENT: &str = "cluster.messages_sent";
    /// Messages delivered to their destination site.
    pub const CLUSTER_MESSAGES_DELIVERED: &str = "cluster.messages_delivered";
    /// Messages dropped (Bernoulli loss or partitioned at delivery time).
    pub const CLUSTER_MESSAGES_DROPPED: &str = "cluster.messages_dropped";
    /// Quorum sessions (read or write) started, excluding retries.
    pub const CLUSTER_SESSIONS: &str = "cluster.sessions";
    /// Retry rounds dispatched after a session timeout.
    pub const CLUSTER_RETRIES: &str = "cluster.retries";
    /// Sessions resolved `Committed`.
    pub const CLUSTER_COMMITTED: &str = "cluster.committed";
    /// Sessions resolved `TimedOut` after exhausting retries.
    pub const CLUSTER_TIMED_OUT: &str = "cluster.timed_out";
    /// Sessions resolved `Unavailable` (coordinator down at dispatch).
    pub const CLUSTER_UNAVAILABLE: &str = "cluster.unavailable";
    /// Session timers voided before firing (session resolved first).
    pub const CLUSTER_TIMERS_CANCELLED: &str = "cluster.timers_cancelled";
    /// Measured read sessions submitted (excludes warm-up).
    pub const CLUSTER_READS_SUBMITTED: &str = "cluster.reads_submitted";
    /// Measured write sessions submitted (excludes warm-up).
    pub const CLUSTER_WRITES_SUBMITTED: &str = "cluster.writes_submitted";
    /// Quorum systems evaluated by the algebra comparison harness.
    pub const ALGEBRA_SYSTEMS_EVALUATED: &str = "algebra.systems_evaluated";
    /// Intersection certifications performed (one per evaluated system).
    pub const ALGEBRA_INTERSECTION_CHECKS: &str = "algebra.intersection_checks";
    /// Certifications that found a violated intersection (must stay 0
    /// for every *reported* system — the CI smoke gate asserts it).
    pub const ALGEBRA_INTERSECTION_FAILURES: &str = "algebra.intersection_failures";
    /// Minimal quorums enumerated across all evaluated systems.
    pub const ALGEBRA_QUORUMS_ENUMERATED: &str = "algebra.quorums_enumerated";
    /// Multiplicative-weights iterations spent optimizing strategies.
    pub const ALGEBRA_STRATEGY_ITERATIONS: &str = "algebra.strategy_iterations";
    /// Retry rounds that adopted a different assignment epoch and reset
    /// their accumulated pledges (cross-epoch-mixing fix).
    pub const CLUSTER_CROSS_EPOCH_RESETS: &str = "cluster.cross_epoch_resets";
    /// Phase-1 pledges ignored for carrying a mismatched epoch tag.
    pub const CLUSTER_STALE_GRANTS_IGNORED: &str = "cluster.stale_grants_ignored";
    /// Canonical states the model checker explored.
    pub const MC_STATES_EXPLORED: &str = "mc.states_explored";
    /// Transitions (choice executions) the model checker took.
    pub const MC_TRANSITIONS: &str = "mc.transitions";
    /// Invariant violations found across the exploration.
    pub const MC_VIOLATIONS: &str = "mc.violations";
    /// Frontier states cut off by the depth bound (0 = exhaustive).
    pub const MC_TRUNCATED: &str = "mc.truncated";
    /// Explorations aborted by the state-count cap (0 = exhaustive).
    pub const MC_CAPPED: &str = "mc.capped";
    /// Enabled transitions skipped by partial-order reduction.
    pub const MC_POR_SKIPS: &str = "mc.por_skips";
    /// Deliveries pruned as provable no-ops (equivalent to drops).
    pub const MC_NOOP_SKIPS: &str = "mc.noop_skips";
    /// Site permutations in the symmetry group used for canonicalization.
    pub const MC_SYMMETRY_PERMS: &str = "mc.symmetry_perms";
    /// Deepest BFS layer reached during exploration.
    pub const MC_MAX_DEPTH: &str = "mc.max_depth";
}
