//! Hand-rolled JSON value model, writer, and parser.
//!
//! The workspace builds fully offline, so `quorum-obs` cannot pull in
//! `serde`/`serde_json`. The subset implemented here is exactly what run
//! manifests need: objects (insertion-ordered via sorted `BTreeMap`),
//! arrays, strings, finite f64 numbers, u64 integers, booleans, null.
//! The parser exists so manifests can be read back in tests and tooling;
//! it accepts standard JSON (with the usual escapes) and rejects NaN and
//! infinities, which the writer never emits either.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, written without a decimal point.
    Int(u64),
    /// A finite double, written with enough digits to round-trip.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with deterministically (lexicographically) ordered keys.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> Self {
        JsonValue::Object(BTreeMap::new())
    }

    /// Inserts `key → value` into an object; panics if `self` is not one.
    pub fn insert(&mut self, key: &str, value: JsonValue) {
        match self {
            JsonValue::Object(map) => {
                map.insert(key.to_string(), value);
            }
            other => panic!("insert on non-object JsonValue {other:?}"),
        }
    }

    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a u64 if it is an integer (or an integral `Num`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            JsonValue::Num(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as an f64 for either numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the format manifests are written in, diff-friendly.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Num(v) => write_f64(out, *v),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write_into(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write_into(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Errors carry a byte offset and message.
    pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    assert!(v.is_finite(), "JSON cannot represent {v}");
    if v == v.trunc() && v.abs() < 1e15 {
        // Keep a decimal point so the reader can tell Num from Int.
        let _ = write!(out, "{v:.1}");
    } else {
        // `{}` on f64 is shortest-round-trip in Rust.
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("Some(_) arm guarantees a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("number span is ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !v.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(JsonValue::Num(v))
    }
}

/// Flattens a JSON document into `key,value` CSV rows.
///
/// Nested object keys join with `.`; array elements index with `[i]`.
/// Scalar leaves become one row each; the header row is `key,value`.
/// Strings containing commas or quotes are double-quote escaped per
/// RFC 4180.
pub fn to_csv(value: &JsonValue) -> String {
    let mut rows = vec!["key,value".to_string()];
    flatten(value, String::new(), &mut rows);
    let mut out = rows.join("\n");
    out.push('\n');
    out
}

fn flatten(value: &JsonValue, prefix: String, rows: &mut Vec<String>) {
    match value {
        JsonValue::Object(map) => {
            for (k, v) in map {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(v, key, rows);
            }
        }
        JsonValue::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(v, format!("{prefix}[{i}]"), rows);
            }
        }
        scalar => {
            let rendered = match scalar {
                JsonValue::Str(s) => csv_escape(s),
                other => other.to_string_compact(),
            };
            rows.push(format!("{},{}", csv_escape(&prefix), rendered));
        }
    }
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JsonValue {
        let mut obj = JsonValue::object();
        obj.insert("seed", JsonValue::Int(42));
        obj.insert("rho", JsonValue::Num(1.0 / 128.0));
        obj.insert("label", JsonValue::Str("ring, 101 sites".into()));
        obj.insert("ok", JsonValue::Bool(true));
        obj.insert("none", JsonValue::Null);
        obj.insert(
            "trace",
            JsonValue::Array(vec![JsonValue::Num(0.5), JsonValue::Num(0.25)]),
        );
        obj
    }

    #[test]
    fn compact_and_pretty_parse_back_identically() {
        let doc = sample();
        assert_eq!(JsonValue::parse(&doc.to_string_compact()).unwrap(), doc);
        assert_eq!(JsonValue::parse(&doc.to_string_pretty()).unwrap(), doc);
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        let round = JsonValue::parse("{\"i\": 3, \"f\": 3.0}").unwrap();
        assert_eq!(round.get("i"), Some(&JsonValue::Int(3)));
        assert_eq!(round.get("f"), Some(&JsonValue::Num(3.0)));
        // And the writer preserves the distinction.
        assert_eq!(JsonValue::Int(3).to_string_compact(), "3");
        assert_eq!(JsonValue::Num(3.0).to_string_compact(), "3.0");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [
            1.0 / 128.0,
            0.005,
            1e-17,
            123456.789,
            -0.0,
            f64::MIN_POSITIVE,
        ] {
            let text = JsonValue::Num(v).to_string_compact();
            match JsonValue::parse(&text).unwrap() {
                JsonValue::Num(back) => assert_eq!(back.to_bits(), v.to_bits(), "{text}"),
                JsonValue::Int(back) => assert_eq!(back as f64, v),
                other => panic!("parsed {other:?}"),
            }
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "quote \" slash \\ newline \n tab \t unicode é control \u{0001}";
        let text = JsonValue::Str(tricky.into()).to_string_compact();
        assert_eq!(
            JsonValue::parse(&text).unwrap(),
            JsonValue::Str(tricky.into())
        );
    }

    #[test]
    fn object_keys_are_sorted_in_output() {
        let mut obj = JsonValue::object();
        obj.insert("zeta", JsonValue::Int(1));
        obj.insert("alpha", JsonValue::Int(2));
        let text = obj.to_string_compact();
        assert!(text.find("alpha").unwrap() < text.find("zeta").unwrap());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"open"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let doc = JsonValue::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        let arr = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], JsonValue::Int(1));
        assert_eq!(arr[1].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn csv_flattening_covers_nesting_and_escaping() {
        let csv = to_csv(&sample());
        assert!(csv.starts_with("key,value\n"));
        assert!(csv.contains("seed,42\n"));
        assert!(csv.contains("trace[0],0.5\n"));
        assert!(csv.contains("trace[1],0.25\n"));
        // The comma in the label forces quoting.
        assert!(csv.contains("label,\"ring, 101 sites\"\n"));
    }

    #[test]
    fn negative_and_exponent_numbers_parse() {
        assert_eq!(
            JsonValue::parse("-2.5e-3").unwrap(),
            JsonValue::Num(-2.5e-3)
        );
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::Num(-7.0));
    }
}
