//! Counter/timer/gauge registry.
//!
//! Design goals, in order: hot-path increments must be one relaxed atomic
//! add; snapshots must be deterministic (sorted by name); merging two
//! registries (e.g. per-worker registries from a parallel run) must be
//! associative and lossless for counters and timers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A shareable handle to one named monotonic counter.
///
/// Cloning is cheap (an `Arc` bump); increments are relaxed atomic adds.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// One named timer: accumulated nanoseconds plus an activation count.
#[derive(Debug, Default)]
struct TimerCell {
    nanos: AtomicU64,
    activations: AtomicU64,
}

/// Thread-safe bank of named counters, timers, and gauges.
///
/// Handle acquisition ([`Registry::counter`]) takes a lock once; the
/// returned [`Counter`] is lock-free thereafter. All maps are `BTreeMap`s
/// so snapshots and serialized output are deterministically ordered.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    timers: Mutex<BTreeMap<String, Arc<TimerCell>>>,
    gauges: Mutex<BTreeMap<String, f64>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("registry lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Adds `n` to the counter named `name` (handle-free convenience for
    /// cold paths; hot paths should hold a [`Counter`]).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Sets the gauge named `name` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut map = self.gauges.lock().expect("registry lock");
        map.insert(name.to_string(), value);
    }

    /// Starts a scoped timer accumulating into `name` on drop.
    pub fn scoped_timer(&self, name: &str) -> ScopedTimer {
        let cell = {
            let mut map = self.timers.lock().expect("registry lock");
            Arc::clone(map.entry(name.to_string()).or_default())
        };
        ScopedTimer {
            cell,
            started: Instant::now(),
        }
    }

    /// Records an externally-measured duration into timer `name`.
    pub fn record_duration(&self, name: &str, duration: std::time::Duration) {
        let cell = {
            let mut map = self.timers.lock().expect("registry lock");
            Arc::clone(map.entry(name.to_string()).or_default())
        };
        cell.nanos
            .fetch_add(duration.as_nanos() as u64, Ordering::Relaxed);
        cell.activations.fetch_add(1, Ordering::Relaxed);
    }

    /// Merges another registry into this one: counters and timers add;
    /// gauges take `other`'s value (last writer wins).
    pub fn merge(&self, other: &Registry) {
        let snap = other.snapshot();
        for (name, v) in &snap.counters {
            self.add(name, *v);
        }
        for (name, (nanos, activations)) in &snap.timers {
            let cell = {
                let mut map = self.timers.lock().expect("registry lock");
                Arc::clone(map.entry(name.clone()).or_default())
            };
            cell.nanos.fetch_add(*nanos, Ordering::Relaxed);
            cell.activations.fetch_add(*activations, Ordering::Relaxed);
        }
        for (name, v) in &snap.gauges {
            self.set_gauge(name, *v);
        }
    }

    /// A deterministic point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let timers = self
            .timers
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    (
                        v.nanos.load(Ordering::Relaxed),
                        v.activations.load(Ordering::Relaxed),
                    ),
                )
            })
            .collect();
        let gauges = self.gauges.lock().expect("registry lock").clone();
        Snapshot {
            counters,
            timers,
            gauges,
        }
    }
}

/// RAII wall-clock timer; accumulates into its registry slot on drop.
#[derive(Debug)]
pub struct ScopedTimer {
    cell: Arc<TimerCell>,
    started: Instant,
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.cell
            .nanos
            .fetch_add(self.started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.cell.activations.fetch_add(1, Ordering::Relaxed);
    }
}

/// Deterministically-ordered copy of a [`Registry`]'s contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// `(accumulated nanoseconds, activations)` by timer name.
    pub timers: BTreeMap<String, (u64, u64)>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
}

impl Snapshot {
    /// Counter value, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Accumulated seconds in timer `name`, or 0.
    pub fn timer_secs(&self, name: &str) -> f64 {
        self.timers
            .get(name)
            .map(|&(nanos, _)| nanos as f64 / 1e9)
            .unwrap_or(0.0)
    }
}

/// Process-wide registry for call sites with no natural place to thread a
/// handle (one-shot examples, ad-hoc probes). Library code should prefer
/// an explicitly-passed [`Registry`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handle_and_name_share_storage() {
        let r = Registry::new();
        let c = r.counter("x");
        c.add(3);
        r.add("x", 4);
        assert_eq!(r.counter("x").get(), 7);
        assert_eq!(r.snapshot().counter("x"), 7);
    }

    #[test]
    fn missing_names_read_zero() {
        let s = Registry::new().snapshot();
        assert_eq!(s.counter("nope"), 0);
        assert_eq!(s.timer_secs("nope"), 0.0);
    }

    #[test]
    fn scoped_timer_accumulates() {
        let r = Registry::new();
        for _ in 0..3 {
            let _t = r.scoped_timer("phase");
            std::hint::black_box(());
        }
        let snap = r.snapshot();
        let (_nanos, activations) = snap.timers["phase"];
        assert_eq!(activations, 3);
        assert!(snap.timer_secs("phase") >= 0.0);
    }

    #[test]
    fn record_duration_is_explicit_path() {
        let r = Registry::new();
        r.record_duration("io", std::time::Duration::from_millis(5));
        r.record_duration("io", std::time::Duration::from_millis(7));
        let snap = r.snapshot();
        assert_eq!(snap.timers["io"].1, 2);
        assert!((snap.timer_secs("io") - 0.012).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters_and_timers_overwrites_gauges() {
        let a = Registry::new();
        let b = Registry::new();
        a.add("c", 10);
        b.add("c", 5);
        b.add("only_b", 1);
        a.record_duration("t", std::time::Duration::from_secs(1));
        b.record_duration("t", std::time::Duration::from_secs(2));
        a.set_gauge("g", 1.0);
        b.set_gauge("g", 9.0);
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.counter("c"), 15);
        assert_eq!(snap.counter("only_b"), 1);
        assert_eq!(snap.timers["t"], (3_000_000_000, 2));
        assert_eq!(snap.gauges["g"], 9.0);
    }

    #[test]
    fn merge_is_associative_for_counters() {
        let mk = |v: u64| {
            let r = Registry::new();
            r.add("c", v);
            r
        };
        let left = mk(1);
        left.merge(&mk(2));
        left.merge(&mk(4));
        let right = mk(1);
        let bc = mk(2);
        bc.merge(&mk(4));
        right.merge(&bc);
        assert_eq!(left.snapshot().counter("c"), right.snapshot().counter("c"));
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let r = Registry::new();
        let c = r.counter("hot");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(r.snapshot().counter("hot"), 80_000);
    }

    #[test]
    fn snapshot_is_sorted() {
        let r = Registry::new();
        r.add("zebra", 1);
        r.add("alpha", 1);
        r.add("mid", 1);
        let snap = r.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["alpha", "mid", "zebra"]);
    }

    #[test]
    fn global_registry_is_shared() {
        global().add("obs.test.global", 2);
        assert!(global().snapshot().counter("obs.test.global") >= 2);
    }
}
