//! The metric-key registry: the single declared schema of every metric
//! key the workspace emits.
//!
//! Producers (simulator, cache, estimator, benches) and consumers
//! (manifest writers, CI jq gates) agree by referencing these constants
//! instead of spelling strings; `quorum-lint`'s `obs-key-registry` rule
//! enforces both directions — a key emitted anywhere without a constant
//! here fails the lint, and a constant here that nothing references is
//! dead schema and fails too. `quorum-lint --emit-keys-json` exports
//! this file so CI can cross-check the keys its gates grep for.

/// DES events popped from the future-event list.
pub const DES_EVENTS: &str = "des.events_processed";
/// Site up/down transitions applied.
pub const DES_SITE_TRANSITIONS: &str = "des.site_transitions";
/// Link up/down transitions applied.
pub const DES_LINK_TRANSITIONS: &str = "des.link_transitions";
/// Accesses submitted (warm-up + measured).
pub const DES_ACCESSES: &str = "des.accesses";
/// Cancelled-timer tombstones still resident in the event list at
/// observation time (gauge).
pub const DES_QUEUE_TOMBSTONES: &str = "des.queue_tombstones";
/// Tombstone compaction sweeps performed by the event list.
pub const DES_QUEUE_COMPACTIONS: &str = "des.queue_compactions";
/// Objects simulated by the sharded throughput engine.
pub const SHARD_OBJECTS: &str = "shard.objects";
/// Shards the object space was partitioned into.
pub const SHARD_SHARDS: &str = "shard.shards";
/// Accesses dispatched across all objects (reads + writes).
pub const SHARD_ACCESSES: &str = "shard.accesses";
/// Connectivity epochs in the shared failure timeline.
pub const SHARD_EPOCHS: &str = "shard.epochs";
/// Assignment profiles (grant rows per epoch) in the timeline.
pub const SHARD_ASSIGNMENTS: &str = "shard.assignments";
/// Reads granted across all objects.
pub const SHARD_READS_GRANTED: &str = "shard.reads_granted";
/// Writes granted across all objects.
pub const SHARD_WRITES_GRANTED: &str = "shard.writes_granted";
/// Reads submitted across all objects.
pub const SHARD_READS_SUBMITTED: &str = "shard.reads_submitted";
/// Writes submitted across all objects.
pub const SHARD_WRITES_SUBMITTED: &str = "shard.writes_submitted";
/// Component-cache queries served without a BFS.
pub const CACHE_HITS: &str = "graph.component_cache.hits";
/// Component-cache queries that recomputed the BFS.
pub const CACHE_RECOMPUTATIONS: &str = "graph.component_cache.recomputations";
/// Topology events the incremental kernel absorbed by merging
/// components (recoveries; no BFS).
pub const DELTA_MERGES: &str = "graph.delta_merges";
/// Topology events absorbed by re-scanning one component (failures).
pub const DELTA_RESCANS: &str = "graph.delta_rescans";
/// Topology events filtered as provably partition-preserving.
pub const DELTA_NOOPS: &str = "graph.delta_noops";
/// Topology events absorbed by rebuilding the kernel from scratch.
pub const FULL_RECOMPUTES: &str = "graph.full_recomputes";
/// Batches executed by a runner.
pub const RUN_BATCHES: &str = "replica.batches";
/// Worker threads the runner used.
pub const RUN_THREADS: &str = "replica.threads";
/// Observations recorded into estimator histograms.
pub const ESTIMATOR_OBSERVATIONS: &str = "core.estimator.observations";
/// Objective evaluations spent by optimizer argmax sweeps.
pub const OPTIMIZER_EVALUATIONS: &str = "core.optimizer.evaluations";
/// Messages sent by cluster sites (all types, including retries).
pub const CLUSTER_MESSAGES_SENT: &str = "cluster.messages_sent";
/// Messages delivered to their destination site.
pub const CLUSTER_MESSAGES_DELIVERED: &str = "cluster.messages_delivered";
/// Messages dropped (Bernoulli loss or partitioned at delivery time).
pub const CLUSTER_MESSAGES_DROPPED: &str = "cluster.messages_dropped";
/// Quorum sessions (read or write) started, excluding retries.
pub const CLUSTER_SESSIONS: &str = "cluster.sessions";
/// Retry rounds dispatched after a session timeout.
pub const CLUSTER_RETRIES: &str = "cluster.retries";
/// Sessions resolved `Committed`.
pub const CLUSTER_COMMITTED: &str = "cluster.committed";
/// Sessions resolved `TimedOut` after exhausting retries.
pub const CLUSTER_TIMED_OUT: &str = "cluster.timed_out";
/// Sessions resolved `Unavailable` (coordinator down at dispatch).
pub const CLUSTER_UNAVAILABLE: &str = "cluster.unavailable";
/// Session timers voided before firing (session resolved first).
pub const CLUSTER_TIMERS_CANCELLED: &str = "cluster.timers_cancelled";
/// Measured read sessions submitted (excludes warm-up).
pub const CLUSTER_READS_SUBMITTED: &str = "cluster.reads_submitted";
/// Measured write sessions submitted (excludes warm-up).
pub const CLUSTER_WRITES_SUBMITTED: &str = "cluster.writes_submitted";
/// Quorum systems evaluated by the algebra comparison harness.
pub const ALGEBRA_SYSTEMS_EVALUATED: &str = "algebra.systems_evaluated";
/// Intersection certifications performed (one per evaluated system).
pub const ALGEBRA_INTERSECTION_CHECKS: &str = "algebra.intersection_checks";
/// Certifications that found a violated intersection (must stay 0
/// for every *reported* system — the CI smoke gate asserts it).
pub const ALGEBRA_INTERSECTION_FAILURES: &str = "algebra.intersection_failures";
/// Minimal quorums enumerated across all evaluated systems.
pub const ALGEBRA_QUORUMS_ENUMERATED: &str = "algebra.quorums_enumerated";
/// Multiplicative-weights iterations spent optimizing strategies.
pub const ALGEBRA_STRATEGY_ITERATIONS: &str = "algebra.strategy_iterations";
/// Retry rounds that adopted a different assignment epoch and reset
/// their accumulated pledges (cross-epoch-mixing fix).
pub const CLUSTER_CROSS_EPOCH_RESETS: &str = "cluster.cross_epoch_resets";
/// Phase-1 pledges ignored for carrying a mismatched epoch tag.
pub const CLUSTER_STALE_GRANTS_IGNORED: &str = "cluster.stale_grants_ignored";
/// Canonical states the model checker explored.
pub const MC_STATES_EXPLORED: &str = "mc.states_explored";
/// Transitions (choice executions) the model checker took.
pub const MC_TRANSITIONS: &str = "mc.transitions";
/// Invariant violations found across the exploration.
pub const MC_VIOLATIONS: &str = "mc.violations";
/// Frontier states cut off by the depth bound (0 = exhaustive).
pub const MC_TRUNCATED: &str = "mc.truncated";
/// Explorations aborted by the state-count cap (0 = exhaustive).
pub const MC_CAPPED: &str = "mc.capped";
/// Enabled transitions skipped by partial-order reduction.
pub const MC_POR_SKIPS: &str = "mc.por_skips";
/// Deliveries pruned as provable no-ops (equivalent to drops).
pub const MC_NOOP_SKIPS: &str = "mc.noop_skips";
/// Site permutations in the symmetry group used for canonicalization.
pub const MC_SYMMETRY_PERMS: &str = "mc.symmetry_perms";
/// Deepest BFS layer reached during exploration.
pub const MC_MAX_DEPTH: &str = "mc.max_depth";

// ---- keys below were registered when obs-key-registry (quorum-lint)
// ---- made the schema bidirectional; values are byte-identical to the
// ---- literals they replaced, so manifest byte-stability pins hold.

/// Events pushed into a future-event list (both heap and calendar).
pub const DES_EVENTS_SCHEDULED: &str = "des.events_scheduled";
/// Violations that mixed pledges across assignment epochs.
pub const MC_CROSS_EPOCH_VIOLATIONS: &str = "mc.cross_epoch_violations";
/// Stale-read invariant violations found by the checker.
pub const MC_STALE_READ_VIOLATIONS: &str = "mc.stale_read_violations";
/// Concurrent-write invariant violations found by the checker.
pub const MC_MULTI_WRITE_VIOLATIONS: &str = "mc.multi_write_violations";
/// BFS depth of the first invariant violation (gauge; absent if none).
pub const MC_FIRST_VIOLATION_DEPTH: &str = "mc.first_violation_depth";
/// BFS depth of the first cross-epoch violation (gauge).
pub const MC_FIRST_CROSS_EPOCH_DEPTH: &str = "mc.first_cross_epoch_depth";
/// Timer over a model-check ablation sweep.
pub const MC_ABLATE: &str = "mc.ablate";
/// Phase label for a static-assignment replica run.
pub const REPLICA_RUN_STATIC: &str = "replica.run_static";
/// Per-batch duration histogramming in the replica runner.
pub const REPLICA_BATCH: &str = "replica.batch";
/// Replica worker-pool utilization gauge (accounted wall-clock).
pub const REPLICA_THREAD_UTILIZATION: &str = "replica.thread_utilization";
/// Combined (read+write) cluster availability estimate.
pub const CLUSTER_AVAILABILITY: &str = "cluster.availability";
/// Read-session availability estimate.
pub const CLUSTER_READ_AVAILABILITY: &str = "cluster.read_availability";
/// Write-session availability estimate.
pub const CLUSTER_WRITE_AVAILABILITY: &str = "cluster.write_availability";
/// Committed sessions per simulated second.
pub const CLUSTER_GOODPUT: &str = "cluster.goodput";
/// Mean commit latency of read sessions (simulated time).
pub const CLUSTER_READ_LATENCY_MEAN: &str = "cluster.read_latency_mean";
/// Mean commit latency of write sessions (simulated time).
pub const CLUSTER_WRITE_LATENCY_MEAN: &str = "cluster.write_latency_mean";
/// CI half-width of the cluster availability estimate.
pub const CLUSTER_CI_HALF_WIDTH: &str = "cluster.ci_half_width";
/// Read-latency histogram record in the manifest.
pub const CLUSTER_READ_LATENCY: &str = "cluster.read_latency";
/// Write-latency histogram record in the manifest.
pub const CLUSTER_WRITE_LATENCY: &str = "cluster.write_latency";
/// Timer over a whole cluster simulation run.
pub const CLUSTER_RUN: &str = "cluster.run";
/// Per-batch duration histogramming in the cluster runner.
pub const CLUSTER_BATCH: &str = "cluster.batch";
/// Cluster worker-pool utilization gauge (accounted wall-clock).
pub const CLUSTER_THREAD_UTILIZATION: &str = "cluster.thread_utilization";
/// Worker threads the sharded engine used (gauge).
pub const SHARD_THREADS: &str = "shard.threads";
/// Sharded-engine worker-pool utilization gauge.
pub const SHARD_THREAD_UTILIZATION: &str = "shard.thread_utilization";
/// Timer over building the shared failure timeline.
pub const PHASE_TIMELINE_BUILD: &str = "phase.timeline_build";
/// Timer over the batched (SoA stripe) engine run.
pub const PHASE_BATCHED_RUN: &str = "phase.batched_run";
/// Timer over the naive per-access engine run.
pub const PHASE_NAIVE_RUN: &str = "phase.naive_run";
/// Manifest metric: overall availability of the run.
pub const AVAILABILITY: &str = "availability";
/// Manifest metric: read-only availability of the run.
pub const READ_AVAILABILITY: &str = "read_availability";
/// Manifest metric: write availability of the run.
pub const WRITE_AVAILABILITY: &str = "write_availability";
/// Manifest metric: CI half-width of the availability estimate.
pub const CI_HALF_WIDTH: &str = "ci_half_width";
/// Manifest metric: simulated horizon of the throughput run.
pub const HORIZON: &str = "horizon";
/// Manifest metric: batched-engine accesses per wall-clock second.
pub const ACCESSES_PER_SEC: &str = "accesses_per_sec";
/// Manifest metric: batched-engine wall-clock seconds.
pub const BATCHED_WALL_SECS: &str = "batched_wall_secs";
/// Manifest metric: naive-engine accesses per wall-clock second.
pub const NAIVE_ACCESSES_PER_SEC: &str = "naive_accesses_per_sec";
/// Manifest metric: naive-engine wall-clock seconds.
pub const NAIVE_WALL_SECS: &str = "naive_wall_secs";
/// Manifest metric: batched/naive throughput ratio.
pub const SPEEDUP_VS_NAIVE: &str = "speedup_vs_naive";
/// Timer over the long-run reference simulation in validation.
pub const VALIDATE_REFERENCE: &str = "validate.reference";
/// Timer over the validation grid sweep.
pub const VALIDATE_GRID: &str = "validate.grid";
/// Manifest metric: worst |simulated − analytic| availability delta.
pub const VALIDATE_WORST_DELTA: &str = "validate.worst_delta";
/// Manifest metric: CI half-width of the reference simulation.
pub const VALIDATE_REFERENCE_HALF_WIDTH: &str = "validate.reference_half_width";
/// Timer over the read/write-ratio simulation sweep.
pub const RW_RATIO_SIMULATIONS: &str = "rw_ratio.simulations";
/// Manifest metric: fraction of sweeps where the majority end attains.
pub const RW_RATIO_MAJORITY_END_ATTAINS_FRACTION: &str = "rw_ratio.majority_end_attains_fraction";
/// Manifest metric: argmax read-fraction under strict majority.
pub const RW_RATIO_STRICT_MAJORITY_ARGMAX: &str = "rw_ratio.strict_majority_argmax";
/// Manifest metric: max availability delta on the dense topology.
pub const RW_RATIO_DENSE_TOPOLOGY_MAX_DELTA: &str = "rw_ratio.dense_topology_max_delta";
/// Manifest metric: read-fraction α of the comparison run.
pub const ALPHA: &str = "alpha";
/// Manifest metric: best-exact vote-system load at f=2.
pub const LOAD_VOTE_BEST_EXACT_F2: &str = "load.vote-best-exact.f2";
/// Manifest metric: best-exact vote-system load at f=3.
pub const LOAD_VOTE_BEST_EXACT_F3: &str = "load.vote-best-exact.f3";
/// Timer over intersection certification of compared systems.
pub const ALGEBRA_CERTIFY: &str = "algebra.certify";
/// Timer over strategy optimization of compared systems.
pub const ALGEBRA_OPTIMIZE: &str = "algebra.optimize";
/// Phase label for the comparison harness's simulation leg.
pub const ALGEBRA_SIMULATE: &str = "algebra.simulate";
/// Manifest metric: 1 when a structural system beat every vote system.
pub const STRUCTURAL_BEATS_VOTES: &str = "structural_beats_votes";
