//! Small, fully scripted worlds for bounded exhaustive exploration.
//!
//! A [`Universe`] replaces the engine's stochastic environment with an
//! enumerable one: a fixed list of accesses (each dispatch is a choice),
//! a fixed install script (each execution is a choice), and a finite set
//! of network *modes* (partitions of the site set) the explorer may
//! toggle between a bounded number of times. Everything else — votes,
//! specs, retry budget — maps directly onto the engine's
//! [`ClusterConfig`], so the explored protocol is exactly the shipped
//! one.

use quorum_cluster::{ClusterConfig, InstallStep};
use quorum_core::{Access, QuorumSpec, VoteAssignment};
use quorum_des::SimParams;

/// One bounded world for the model checker.
#[derive(Debug, Clone)]
pub struct Universe {
    /// Human-readable name (manifest label).
    pub name: &'static str,
    /// Per-site vote weights (defines the site count).
    pub votes: VoteAssignment,
    /// Quorum spec installed at epoch 0 on every site.
    pub initial_spec: QuorumSpec,
    /// Scripted accesses as `(origin, kind)`; the explorer dispatches
    /// them in order, at every possible point of the interleaving.
    pub accesses: Vec<(usize, Access)>,
    /// Scripted installs as `(origin, spec)`; step `i` installs epoch
    /// `i + 1`, again at every possible point.
    pub installs: Vec<(usize, QuorumSpec)>,
    /// Network modes: each mode partitions the sites into mutually
    /// unreachable groups. Mode 0 is the initial mode; a message is
    /// deliverable iff its endpoints share a group in the *current*
    /// mode (delivery into a partition is a drop, matching the engine).
    pub modes: Vec<Vec<Vec<usize>>>,
    /// How many mode switches the explorer may perform in one run.
    pub max_net_changes: u32,
    /// Retry rounds per session (mirrors [`ClusterConfig::max_retries`]).
    pub max_retries: u32,
    /// Default BFS depth bound (overridable per exploration).
    pub max_depth: u32,
    /// Default explored-state cap (overridable per exploration).
    pub max_states: u64,
}

impl Universe {
    /// The standard bug-hunting world: 3 uniform-vote sites under spec
    /// `(2,3,3)` — writes need *all* votes, so a single missing grant
    /// forces the retry path — with one jointly-safe install to `(2,2,3)`
    /// from site 2, a write from site 0 racing a read from site 1, and
    /// one optional partition that can isolate either coordinator.
    ///
    /// This is the smallest world in which the cross-epoch mixing bug is
    /// reachable through both of its channels (timeout adoption and late
    /// pledges), and in which the one-write-quorum-component invariant
    /// is non-vacuous.
    pub fn standard() -> Self {
        Self {
            name: "standard",
            votes: VoteAssignment::uniform(3),
            initial_spec: QuorumSpec::new(2, 3, 3).expect("valid spec"),
            accesses: vec![(0, Access::Write), (1, Access::Read)],
            installs: vec![(2, QuorumSpec::new(2, 2, 3).expect("valid spec"))],
            modes: vec![
                vec![vec![0, 1, 2]],
                vec![vec![0, 1], vec![2]],
                vec![vec![0], vec![1, 2]],
            ],
            max_net_changes: 2,
            max_retries: 1,
            max_depth: 48,
            max_states: 4_000_000,
        }
    }

    /// A deliberately symmetric world: sites 1 and 2 are interchangeable
    /// (same votes, never a scripted origin, kept together by every
    /// mode), so the symmetry quotient is non-trivial. Used to pin that
    /// canonicalization actually shrinks the state count.
    pub fn symmetric() -> Self {
        Self {
            name: "symmetric",
            votes: VoteAssignment::uniform(3),
            initial_spec: QuorumSpec::majority(3),
            accesses: vec![(0, Access::Write)],
            installs: Vec::new(),
            modes: vec![vec![vec![0, 1, 2]], vec![vec![0], vec![1, 2]]],
            max_net_changes: 1,
            max_retries: 1,
            max_depth: 32,
            max_states: 1_000_000,
        }
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.votes.num_sites()
    }

    /// Builds the engine configuration this universe explores. The
    /// install times are placeholders (the explorer fires installs as
    /// choices, not at clock times); they exist so
    /// [`ClusterConfig::validate`] checks the script's joint safety.
    pub fn config(&self, mix_epoch_votes: bool) -> ClusterConfig {
        let mut cfg = ClusterConfig::new(SimParams::quick());
        cfg.max_retries = self.max_retries;
        cfg.mix_epoch_votes = mix_epoch_votes;
        cfg.installs = self
            .installs
            .iter()
            .enumerate()
            .map(|(i, &(origin, spec))| InstallStep {
                at: (i + 1) as f64,
                origin,
                spec,
            })
            .collect();
        cfg
    }

    /// Checks the universe's internal consistency: scripted origins in
    /// range, every mode a partition of the site set, and the spec/
    /// install script jointly safe (via [`ClusterConfig::validate`]).
    ///
    /// # Panics
    /// Panics on any violated constraint.
    pub fn validate(&self) {
        let n = self.num_sites();
        assert!(n > 0, "universe needs at least one site");
        assert!(!self.modes.is_empty(), "universe needs an initial mode");
        for &(origin, _) in &self.accesses {
            assert!(origin < n, "access origin out of range");
        }
        for (m, groups) in self.modes.iter().enumerate() {
            let mut seen = vec![false; n];
            for group in groups {
                for &s in group {
                    assert!(s < n, "mode {m} names site {s} out of range");
                    assert!(!seen[s], "mode {m} lists site {s} twice");
                    seen[s] = true;
                }
            }
            assert!(
                seen.iter().all(|&b| b),
                "mode {m} is not a partition of all sites"
            );
        }
        self.config(false).validate(self.initial_spec, n);
        assert_eq!(
            self.initial_spec.total(),
            self.votes.total(),
            "spec total must match the vote total"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_universes_validate() {
        Universe::standard().validate();
        Universe::symmetric().validate();
    }

    #[test]
    fn config_carries_ablation_flag_and_installs() {
        let u = Universe::standard();
        let fixed = u.config(false);
        let ablated = u.config(true);
        assert!(!fixed.mix_epoch_votes);
        assert!(ablated.mix_epoch_votes);
        assert_eq!(fixed.installs.len(), 1);
        assert_eq!(fixed.max_retries, 1);
    }

    #[test]
    #[should_panic(expected = "not a partition")]
    fn incomplete_mode_is_rejected() {
        let mut u = Universe::standard();
        u.modes.push(vec![vec![0, 1]]);
        u.validate();
    }

    #[test]
    #[should_panic(expected = "not jointly safe")]
    fn unsafe_install_script_is_rejected() {
        let mut u = Universe::standard();
        // A different vote total can never be jointly safe.
        u.installs.push((0, QuorumSpec::majority(5)));
        u.validate();
    }
}
