//! quorum-mc: bounded exhaustive model checking of the cluster protocol.
//!
//! This crate drives the engine's real [`quorum_cluster::ProtocolCore`]
//! — not a re-model of it — through every reachable interleaving of a
//! small scripted world: message deliveries and drops, session timer
//! fires, partition toggles, and quorum-reassignment installs. Canonical
//! state hashing with a site-symmetry quotient and a sound dead-message
//! reduction keep the search exhaustive within bounds, and the report
//! says so explicitly (`truncated == 0`, `capped == false`).
//!
//! See [`explore`] for the checked invariants and the soundness
//! arguments, and [`Universe`] for how worlds are scripted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod universe;

pub use explore::{explore, BagScheduler, ExploreOptions, McReport, ViolationKind};
pub use universe::Universe;
