//! The bounded exhaustive explorer.
//!
//! Breadth-first search over every reachable protocol state of a
//! [`Universe`], driving the *real* [`ProtocolCore`] (the engine's
//! protocol state machines) through a [`BagScheduler`] that turns the
//! transport into enumerable choices: deliver or drop each in-flight
//! message, fire each pending session timer, switch the network mode,
//! dispatch the next scripted access, execute the next scripted install.
//!
//! ## Checked properties
//!
//! * **No cross-epoch vote accumulation** (transition-level): a pledge
//!   accepted into a session must carry the session's epoch, and a retry
//!   that adopts a different epoch must not keep pledges gathered under
//!   the old one. The [`crate::Universe`]'s `mix_epoch_votes` ablation
//!   restores the pre-fix behavior as the negative control.
//! * **Version freshness** (transition-level): the engine's own
//!   [`FreshnessChecker`](quorum_cluster::FreshnessChecker) — a
//!   committed read never returns a version older than the newest write
//!   committed before it started.
//! * **At most one write-capable component** (state-level): in the
//!   current network mode, at most one group can raise `q_w` votes under
//!   any member's installed spec.
//!
//! ## State canonicalization
//!
//! A state is hashed by a canonical byte encoding of its semantic
//! content: site versions/epochs, open-session accumulators, the sorted
//! in-flight multiset, and the script/mode counters. Timer token values
//! and statistics counters are deliberately excluded — they never affect
//! future behavior. With symmetry enabled the key is the minimum
//! encoding over the universe's valid site permutations (those that
//! preserve votes, fix every scripted origin, and map every mode's
//! partition onto itself), quotienting away interchangeable-site
//! symmetry.
//!
//! ## Reduction
//!
//! Two sound prunings, both relying on the fact that no checked
//! invariant ever reads the in-flight bag:
//!
//! 1. **Live-drop subsumption.** Dropping a still-meaningful message is
//!    never explored as a choice. A bagged message only *adds* enabled
//!    transitions — its presence disables nothing — so every trace from
//!    the dropped-state is step-for-step enabled from the kept-state and
//!    reaches cores identical in everything but the bag. Any violation
//!    reachable after a drop is therefore reachable by simply never
//!    delivering the message. (Without this, reachable bag contents
//!    range over all *subsets* of undelivered traffic — a 2^k blow-up
//!    that buys no new behaviors.)
//! 2. **Dead-message auto-drop.** A state containing a *permanently
//!    dead* message — delivery provably a no-op now and in every future
//!    (resolved session, pledge for an epoch the session can never
//!    return to, stale install/deny), or undeliverable forever
//!    (endpoints partitioned with no mode switches left) — has exactly
//!    one successor: dropping it. Delivering is behaviorally identical
//!    to dropping, and the drop commutes with every other transition,
//!    so the singleton ample set preserves all three properties while
//!    merging states that differ only in dead traffic.
//!
//! `--no-reduction` restores the full deliver/drop branching; the
//! explorer's tests pin that both modes certify the same verdicts.

use crate::universe::Universe;
use quorum_cluster::{
    Message, Payload, ProtocolCore, Scheduler, SessionId, SessionPhase, TimerToken,
};
use quorum_core::Access;
use quorum_des::SimTime;
use quorum_obs::Registry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The enumerable transport: sent messages pile up in an in-flight bag,
/// timers in a token map. The explorer picks which message to deliver or
/// drop and which timer to fire; nothing ever happens spontaneously.
#[derive(Debug, Clone, Default)]
pub struct BagScheduler {
    in_flight: Vec<Message>,
    timers: BTreeMap<u64, SessionId>,
    next_token: u64,
}

impl BagScheduler {
    /// The in-flight message bag.
    pub fn in_flight(&self) -> &[Message] {
        &self.in_flight
    }

    /// Sessions with a pending timer, ordered by token age.
    pub fn pending_timers(&self) -> Vec<(u64, SessionId)> {
        self.timers.iter().map(|(&t, &s)| (t, s)).collect()
    }
}

impl Scheduler for BagScheduler {
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }

    fn send(&mut self, msg: Message) -> bool {
        self.in_flight.push(msg);
        true
    }

    fn arm_timer(&mut self, id: SessionId, _timeout: f64) -> TimerToken {
        let raw = self.next_token;
        self.next_token += 1;
        self.timers.insert(raw, id);
        TimerToken::new(raw)
    }

    fn cancel_timer(&mut self, token: TimerToken) -> bool {
        self.timers.remove(&token.raw()).is_some()
    }
}

/// Which invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// A pledge from a different epoch was accepted, or a retry kept
    /// accumulators across an epoch change.
    CrossEpochMixing,
    /// A committed read returned a stale version (engine checker).
    StaleRead,
    /// More than one component could raise a write quorum.
    MultiWriteComponent,
}

/// Exploration knobs (the universe supplies defaults for the bounds).
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Run the engine with the cross-epoch-mixing ablation (pre-fix
    /// behavior) as the negative control.
    pub mix_epoch_votes: bool,
    /// Enable the dead-message ample-set reduction.
    pub reduction: bool,
    /// Enable the site-symmetry quotient.
    pub symmetry: bool,
    /// Override the universe's BFS depth bound.
    pub max_depth: Option<u32>,
    /// Override the universe's explored-state cap.
    pub max_states: Option<u64>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            mix_epoch_votes: false,
            reduction: true,
            symmetry: true,
            max_depth: None,
            max_states: None,
        }
    }
}

/// What one exploration found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct McReport {
    /// Distinct canonical states visited (including the root).
    pub states_explored: u64,
    /// Transitions executed (including ones reaching visited states).
    pub transitions: u64,
    /// Cross-epoch-mixing violations observed on transitions.
    pub cross_epoch_violations: u64,
    /// Freshness violations observed on transitions.
    pub stale_read_violations: u64,
    /// States with more than one write-capable component.
    pub multi_write_violations: u64,
    /// BFS depth of the first violation of any kind.
    pub first_violation_depth: Option<u32>,
    /// BFS depth of the first cross-epoch-mixing violation.
    pub first_cross_epoch_depth: Option<u32>,
    /// States whose successors were cut off by the depth bound
    /// (0 means the exploration was exhaustive in depth).
    pub truncated: u64,
    /// Whether the state cap aborted the exploration (false means
    /// exhaustive in breadth).
    pub capped: bool,
    /// Drop choices of live messages pruned by the subsumption
    /// reduction (a bagged message only adds behaviors, so dropping it
    /// explores nothing new).
    pub por_skips: u64,
    /// Permanently dead or undeliverable messages auto-dropped by the
    /// reduction (the drop becomes the state's single successor).
    pub noop_skips: u64,
    /// Size of the symmetry group used for canonicalization.
    pub symmetry_perms: u64,
    /// Deepest BFS layer reached.
    pub max_depth_seen: u32,
}

impl McReport {
    /// Total violations of all kinds.
    pub fn violations(&self) -> u64 {
        self.cross_epoch_violations + self.stale_read_violations + self.multi_write_violations
    }

    /// True iff the run visited every reachable state within bounds —
    /// nothing depth-truncated, nothing cut by the state cap.
    pub fn exhaustive(&self) -> bool {
        self.truncated == 0 && !self.capped
    }

    /// Publishes the counters under the `mc.*` observability keys.
    pub fn observe_into(&self, registry: &Registry) {
        use quorum_obs::keys;
        registry.add(keys::MC_STATES_EXPLORED, self.states_explored);
        registry.add(keys::MC_TRANSITIONS, self.transitions);
        registry.add(keys::MC_VIOLATIONS, self.violations());
        registry.add(keys::MC_TRUNCATED, self.truncated);
        registry.add(keys::MC_CAPPED, u64::from(self.capped));
        registry.add(keys::MC_POR_SKIPS, self.por_skips);
        registry.add(keys::MC_NOOP_SKIPS, self.noop_skips);
        registry.add(keys::MC_SYMMETRY_PERMS, self.symmetry_perms);
        registry.add(keys::MC_MAX_DEPTH, u64::from(self.max_depth_seen));
        registry.add(keys::MC_CROSS_EPOCH_VIOLATIONS, self.cross_epoch_violations);
        registry.add(keys::MC_STALE_READ_VIOLATIONS, self.stale_read_violations);
        registry.add(keys::MC_MULTI_WRITE_VIOLATIONS, self.multi_write_violations);
        if let Some(d) = self.first_violation_depth {
            registry.set_gauge(keys::MC_FIRST_VIOLATION_DEPTH, d as f64);
        }
        if let Some(d) = self.first_cross_epoch_depth {
            registry.set_gauge(keys::MC_FIRST_CROSS_EPOCH_DEPTH, d as f64);
        }
    }

    fn record(&mut self, kind: ViolationKind, depth: u32) {
        match kind {
            ViolationKind::CrossEpochMixing => {
                self.cross_epoch_violations += 1;
                if self.first_cross_epoch_depth.is_none_or(|d| depth < d) {
                    self.first_cross_epoch_depth = Some(depth);
                }
            }
            ViolationKind::StaleRead => self.stale_read_violations += 1,
            ViolationKind::MultiWriteComponent => self.multi_write_violations += 1,
        }
        if self.first_violation_depth.is_none_or(|d| depth < d) {
            self.first_violation_depth = Some(depth);
        }
    }
}

/// One node of the search: the protocol core plus everything the core
/// delegates to the environment.
#[derive(Clone)]
struct McState<'a> {
    core: ProtocolCore<'a>,
    sched: BagScheduler,
    mode: usize,
    net_changes: u32,
    next_access: usize,
    next_install: usize,
}

/// One enabled transition.
#[derive(Debug, Clone, Copy)]
enum Choice {
    Deliver(usize),
    Drop(usize),
    Timer(u64),
    NetMode(usize),
    Access,
    Install,
}

/// Immutable exploration context.
struct Ctx<'a> {
    universe: &'a Universe,
    mix: bool,
    /// Per mode: site index → group index.
    site_group: Vec<Vec<usize>>,
    /// Valid site permutations (always contains the identity).
    perms: Vec<Vec<usize>>,
}

impl Ctx<'_> {
    fn connected(&self, mode: usize, a: usize, b: usize) -> bool {
        self.site_group[mode][a] == self.site_group[mode][b]
    }
}

/// Site permutations preserving the universe's structure: equal votes,
/// every scripted origin fixed, every mode's partition mapped onto
/// itself. Renaming sites along such a permutation is a bisimulation.
fn valid_perms(u: &Universe) -> Vec<Vec<usize>> {
    let n = u.num_sites();
    let mut fixed = vec![false; n];
    for &(o, _) in &u.accesses {
        fixed[o] = true;
    }
    for &(o, _) in &u.installs {
        fixed[o] = true;
    }
    let canon_modes: Vec<BTreeSet<Vec<usize>>> = u
        .modes
        .iter()
        .map(|groups| {
            groups
                .iter()
                .map(|g| {
                    let mut g = g.clone();
                    g.sort_unstable();
                    g
                })
                .collect()
        })
        .collect();
    let mut perms = Vec::new();
    let mut p: Vec<usize> = (0..n).collect();
    permute(&mut p, 0, &mut |perm| {
        let ok = (0..n).all(|i| {
            (!fixed[i] || perm[i] == i) && u.votes.votes_of(perm[i]) == u.votes.votes_of(i)
        }) && u.modes.iter().zip(&canon_modes).all(|(groups, canon)| {
            groups.iter().all(|g| {
                let mut mapped: Vec<usize> = g.iter().map(|&s| perm[s]).collect();
                mapped.sort_unstable();
                canon.contains(&mapped)
            })
        });
        if ok {
            perms.push(perm.to_vec());
        }
    });
    perms.sort();
    perms
}

/// Visits every permutation of `p[k..]` (Heap-style recursion).
fn permute(p: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == p.len() {
        visit(p);
        return;
    }
    for i in k..p.len() {
        p.swap(k, i);
        permute(p, k + 1, visit);
        p.swap(k, i);
    }
}

fn push_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn encode_payload(out: &mut Vec<u8>, payload: &Payload) {
    match *payload {
        Payload::VoteRequest {
            kind,
            epoch,
            epoch_spec,
        } => {
            out.push(0);
            out.push(kind as u8);
            push_u64(out, epoch);
            push_u64(out, epoch_spec.q_r());
            push_u64(out, epoch_spec.q_w());
        }
        Payload::ReadValue {
            votes,
            version,
            epoch,
        } => {
            out.push(1);
            push_u64(out, votes);
            push_u64(out, version);
            push_u64(out, epoch);
        }
        Payload::VoteGrant {
            votes,
            version,
            epoch,
        } => {
            out.push(2);
            push_u64(out, votes);
            push_u64(out, version);
            push_u64(out, epoch);
        }
        Payload::VoteDeny { epoch, epoch_spec } => {
            out.push(3);
            push_u64(out, epoch);
            push_u64(out, epoch_spec.q_r());
            push_u64(out, epoch_spec.q_w());
        }
        Payload::WriteCommit { version } => {
            out.push(4);
            push_u64(out, version);
        }
        Payload::CommitAck { votes } => {
            out.push(5);
            push_u64(out, votes);
        }
        Payload::Install { epoch, epoch_spec } => {
            out.push(6);
            push_u64(out, epoch);
            push_u64(out, epoch_spec.q_r());
            push_u64(out, epoch_spec.q_w());
        }
    }
}

/// Encodes the state's semantic content under a site renaming. Timer
/// token values, statistics, and clock are excluded: they never affect
/// future protocol behavior.
fn encode(ctx: &Ctx<'_>, st: &McState<'_>, perm: &[usize]) -> Vec<u8> {
    let n = ctx.universe.num_sites();
    let mut inv = vec![0usize; n];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    let mut out = Vec::with_capacity(96);
    out.push(st.mode as u8);
    out.push(st.net_changes as u8);
    out.push(st.next_access as u8);
    out.push(st.next_install as u8);
    for &orig in &inv {
        let v = st.core.site_view(orig);
        push_u64(&mut out, v.version);
        push_u64(&mut out, v.epoch);
    }
    for id in st.core.session_ids() {
        let v = st.core.session_view(id).expect("listed session is open");
        push_u64(&mut out, id);
        out.push(perm[v.origin] as u8);
        out.push(match v.kind {
            Access::Read => 0,
            Access::Write => 1,
        });
        out.push(match v.phase {
            SessionPhase::Gather => 0,
            SessionPhase::Commit => 1,
        });
        out.push(v.round as u8);
        push_u64(&mut out, v.votes);
        for &orig in &inv {
            out.push(u8::from(v.contributed[orig]));
        }
        push_u64(&mut out, v.epoch);
        push_u64(&mut out, v.max_version);
        push_u64(&mut out, v.new_version);
        out.push(u8::from(st.sched.timers.values().any(|&s| s == id)));
    }
    out.push(0xFF);
    let mut msgs: Vec<Vec<u8>> = st
        .sched
        .in_flight
        .iter()
        .map(|m| {
            let mut b = Vec::with_capacity(32);
            b.push(perm[m.from] as u8);
            b.push(perm[m.to] as u8);
            push_u64(&mut b, m.session);
            encode_payload(&mut b, &m.payload);
            b
        })
        .collect();
    msgs.sort();
    for m in msgs {
        out.extend_from_slice(&m);
    }
    out
}

/// The canonical key: minimum encoding over the symmetry group.
fn canonical_key(ctx: &Ctx<'_>, st: &McState<'_>) -> Vec<u8> {
    ctx.perms
        .iter()
        .map(|p| encode(ctx, st, p))
        .min()
        .expect("the identity permutation is always present")
}

/// Is delivering `msg` a no-op now *and in every future*? Such a message
/// is behaviorally a drop, and dropping it commutes with everything.
///
/// The permanence arguments: session ids are never reused; a session's
/// phase never returns from `Commit` to `Gather`; epochs (session and
/// site) are monotone, so a pledge tagged below the session's epoch can
/// never match again (under the fix), and a session that resets its
/// accumulators on adoption simultaneously moves its epoch above every
/// stale pledge's tag.
fn permanently_dead(core: &ProtocolCore<'_>, mix: bool, msg: &Message) -> bool {
    match msg.payload {
        Payload::ReadValue { epoch, .. } | Payload::VoteGrant { epoch, .. } => {
            let Some(v) = core.session_view(msg.session) else {
                return true; // resolved sessions never reopen
            };
            if v.phase == SessionPhase::Commit {
                return true; // phase never goes back to Gather
            }
            if !mix && epoch < v.epoch {
                return true; // session epoch is monotone
            }
            if v.contributed[msg.from] && (mix || epoch == v.epoch) {
                // Under the ablation `contributed` never resets within
                // Gather; under the fix a reset would bump the session
                // epoch above this pledge's tag anyway.
                return true;
            }
            false
        }
        Payload::CommitAck { .. } => core.session_view(msg.session).is_none(),
        // Deny/install adoption requires a strictly newer epoch, and the
        // receiver's installed epoch is monotone.
        Payload::VoteDeny { epoch, .. } | Payload::Install { epoch, .. } => {
            epoch <= core.site_view(msg.to).epoch
        }
        // Requests always produce a reply; commits always produce an ack.
        Payload::VoteRequest { .. } | Payload::WriteCommit { .. } => false,
    }
}

/// All enabled transitions, in deterministic order. With reduction on,
/// a state holding a permanently dead (or forever-undeliverable)
/// message collapses to the single choice of dropping it, and explicit
/// drops of live messages are pruned entirely (see module docs).
fn choices(ctx: &Ctx<'_>, st: &McState<'_>, reduction: bool, report: &mut McReport) -> Vec<Choice> {
    if reduction {
        if let Some(i) = st.sched.in_flight.iter().position(|m| {
            permanently_dead(&st.core, ctx.mix, m)
                || (!ctx.connected(st.mode, m.from, m.to)
                    && st.net_changes >= ctx.universe.max_net_changes)
        }) {
            report.noop_skips += 1;
            return vec![Choice::Drop(i)];
        }
    }
    let mut cs = Vec::new();
    for (i, m) in st.sched.in_flight.iter().enumerate() {
        if ctx.connected(st.mode, m.from, m.to) {
            cs.push(Choice::Deliver(i));
        }
        if reduction {
            report.por_skips += 1;
        } else {
            cs.push(Choice::Drop(i));
        }
    }
    for &tok in st.sched.timers.keys() {
        cs.push(Choice::Timer(tok));
    }
    if st.net_changes < ctx.universe.max_net_changes {
        for m in 0..ctx.universe.modes.len() {
            if m != st.mode {
                cs.push(Choice::NetMode(m));
            }
        }
    }
    if st.next_access < ctx.universe.accesses.len() {
        cs.push(Choice::Access);
    }
    if st.next_install < ctx.universe.installs.len() {
        cs.push(Choice::Install);
    }
    cs
}

/// Does the state have any enabled transition at all? (Used to decide
/// whether a depth cutoff actually truncated anything.)
fn has_choices(ctx: &Ctx<'_>, st: &McState<'_>) -> bool {
    !st.sched.in_flight.is_empty()
        || !st.sched.timers.is_empty()
        || st.next_access < ctx.universe.accesses.len()
        || st.next_install < ctx.universe.installs.len()
        || (st.net_changes < ctx.universe.max_net_changes && ctx.universe.modes.len() > 1)
}

/// Executes one transition on a clone of `st`, appending any
/// transition-level violations to `viols`.
fn step<'a>(
    ctx: &Ctx<'_>,
    st: &McState<'a>,
    choice: Choice,
    viols: &mut Vec<ViolationKind>,
) -> McState<'a> {
    let mut s = st.clone();
    let fresh_before = s.core.checker().violations();
    match choice {
        Choice::Deliver(i) => {
            let msg = s.sched.in_flight.remove(i);
            // Pre-capture: is this an eligible pledge, and under which
            // epoch is the session gathering right now?
            let pledge = match msg.payload {
                Payload::ReadValue { epoch, .. } | Payload::VoteGrant { epoch, .. } => s
                    .core
                    .session_view(msg.session)
                    .filter(|v| v.phase == SessionPhase::Gather && !v.contributed[msg.from])
                    .map(|v| (v.epoch, epoch)),
                _ => None,
            };
            s.core.stats_mut().messages_delivered += 1;
            {
                let McState { core, sched, .. } = &mut s;
                core.handle_message(msg, sched);
            }
            if let Some((session_epoch, msg_epoch)) = pledge {
                // Accepted iff the session resolved, advanced to its
                // commit phase, or marked the sender as contributed —
                // a rejected pledge leaves all three unchanged.
                let accepted = match s.core.session_view(msg.session) {
                    None => true,
                    Some(v) => v.phase == SessionPhase::Commit || v.contributed[msg.from],
                };
                if accepted && msg_epoch != session_epoch {
                    viols.push(ViolationKind::CrossEpochMixing);
                }
            }
        }
        Choice::Drop(i) => {
            s.sched.in_flight.remove(i);
            s.core.stats_mut().messages_dropped += 1;
        }
        Choice::Timer(tok) => {
            let id = s
                .sched
                .timers
                .remove(&tok)
                .expect("enumerated timers are pending");
            let pre = s.core.session_view(id).map(|v| (v.epoch, v.origin));
            {
                let McState { core, sched, .. } = &mut s;
                core.session_timeout(id, true, sched);
            }
            if let Some((epoch_before, origin)) = pre {
                if let Some(v) = s.core.session_view(id) {
                    // A retry that adopted a different epoch must hold
                    // exactly the coordinator's own re-seeded pledge;
                    // anything more is accumulation carried across
                    // epochs.
                    if v.epoch != epoch_before && v.votes > ctx.universe.votes.votes_of(origin) {
                        viols.push(ViolationKind::CrossEpochMixing);
                    }
                }
            }
        }
        Choice::NetMode(m) => {
            s.mode = m;
            s.net_changes += 1;
        }
        Choice::Access => {
            let (origin, kind) = ctx.universe.accesses[s.next_access];
            let index = s.next_access as u64;
            s.next_access += 1;
            match kind {
                Access::Read => s.core.stats_mut().reads_submitted += 1,
                Access::Write => s.core.stats_mut().writes_submitted += 1,
            }
            let McState { core, sched, .. } = &mut s;
            core.open_session(origin, kind, Some(index), sched);
        }
        Choice::Install => {
            let (origin, spec) = ctx.universe.installs[s.next_install];
            let epoch = (s.next_install + 1) as u64;
            s.next_install += 1;
            let McState { core, sched, .. } = &mut s;
            core.apply_install(origin, epoch, spec, sched);
        }
    }
    if s.core.checker().violations() > fresh_before {
        viols.push(ViolationKind::StaleRead);
    }
    s
}

/// Can more than one component of the current mode raise a write quorum
/// under some member's installed spec? Every §2.1 spec has `2·q_w > T`,
/// and jointly-safe installs keep cross-epoch write quorums
/// intersecting, so this must never happen.
fn multi_write_component(ctx: &Ctx<'_>, st: &McState<'_>) -> bool {
    let mut capable = 0u32;
    for group in &ctx.universe.modes[st.mode] {
        let votes_in: u64 = group.iter().map(|&i| ctx.universe.votes.votes_of(i)).sum();
        if group
            .iter()
            .any(|&i| votes_in >= st.core.site_view(i).spec.q_w())
        {
            capable += 1;
        }
    }
    capable > 1
}

/// Explores every reachable state of `universe` within the bounds and
/// reports what it found. Deterministic: identical inputs produce an
/// identical [`McReport`].
///
/// # Panics
/// Panics if the universe fails [`Universe::validate`].
pub fn explore(universe: &Universe, opts: &ExploreOptions) -> McReport {
    universe.validate();
    let cfg = universe.config(opts.mix_epoch_votes);
    let n = universe.num_sites();
    let site_group = universe
        .modes
        .iter()
        .map(|groups| {
            let mut g = vec![0usize; n];
            for (gi, group) in groups.iter().enumerate() {
                for &s in group {
                    g[s] = gi;
                }
            }
            g
        })
        .collect();
    let perms = if opts.symmetry {
        valid_perms(universe)
    } else {
        vec![(0..n).collect()]
    };
    let ctx = Ctx {
        universe,
        mix: opts.mix_epoch_votes,
        site_group,
        perms,
    };
    let max_depth = opts.max_depth.unwrap_or(universe.max_depth);
    let max_states = opts.max_states.unwrap_or(universe.max_states);

    let mut report = McReport {
        symmetry_perms: ctx.perms.len() as u64,
        ..McReport::default()
    };

    let root = McState {
        core: ProtocolCore::new(&cfg, &universe.votes, universe.initial_spec),
        sched: BagScheduler::default(),
        mode: 0,
        net_changes: 0,
        next_access: 0,
        next_install: 0,
    };
    if multi_write_component(&ctx, &root) {
        report.record(ViolationKind::MultiWriteComponent, 0);
    }
    let mut visited: BTreeSet<Vec<u8>> = BTreeSet::new();
    visited.insert(canonical_key(&ctx, &root));
    report.states_explored = 1;
    let mut frontier: VecDeque<(McState<'_>, u32)> = VecDeque::new();
    frontier.push_back((root, 0));

    'bfs: while let Some((st, depth)) = frontier.pop_front() {
        report.max_depth_seen = report.max_depth_seen.max(depth);
        if depth >= max_depth {
            if has_choices(&ctx, &st) {
                report.truncated += 1;
            }
            continue;
        }
        for choice in choices(&ctx, &st, opts.reduction, &mut report) {
            report.transitions += 1;
            let mut viols = Vec::new();
            let next = step(&ctx, &st, choice, &mut viols);
            for kind in viols {
                report.record(kind, depth + 1);
            }
            if visited.insert(canonical_key(&ctx, &next)) {
                if multi_write_component(&ctx, &next) {
                    report.record(ViolationKind::MultiWriteComponent, depth + 1);
                }
                report.states_explored += 1;
                if report.states_explored >= max_states {
                    report.capped = true;
                    break 'bfs;
                }
                frontier.push_back((next, depth + 1));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_universe_has_a_nontrivial_group() {
        let perms = valid_perms(&Universe::symmetric());
        // Identity plus the 1↔2 swap (site 0 is the scripted origin).
        assert_eq!(perms.len(), 2);
        assert!(perms.contains(&vec![0, 1, 2]));
        assert!(perms.contains(&vec![0, 2, 1]));
    }

    #[test]
    fn standard_universe_group_is_trivial() {
        // All three sites are scripted origins: nothing to quotient.
        let perms = valid_perms(&Universe::standard());
        assert_eq!(perms, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn symmetric_universe_explores_clean_and_exhaustively() {
        let u = Universe::symmetric();
        let report = explore(&u, &ExploreOptions::default());
        assert!(report.exhaustive(), "{report:?}");
        assert_eq!(report.violations(), 0, "{report:?}");
        assert!(report.states_explored > 10);
        assert!(report.transitions >= report.states_explored - 1);
    }

    #[test]
    fn symmetry_quotient_shrinks_the_state_space() {
        let u = Universe::symmetric();
        let with = explore(&u, &ExploreOptions::default());
        let without = explore(
            &u,
            &ExploreOptions {
                symmetry: false,
                ..ExploreOptions::default()
            },
        );
        assert!(with.exhaustive() && without.exhaustive());
        assert!(
            with.states_explored < without.states_explored,
            "quotient {} vs full {}",
            with.states_explored,
            without.states_explored
        );
        // Both certify the same (absence of) violations.
        assert_eq!(with.violations(), 0);
        assert_eq!(without.violations(), 0);
    }

    #[test]
    fn exploration_is_deterministic() {
        let u = Universe::symmetric();
        let a = explore(&u, &ExploreOptions::default());
        let b = explore(&u, &ExploreOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn depth_bound_reports_truncation() {
        let u = Universe::symmetric();
        let report = explore(
            &u,
            &ExploreOptions {
                max_depth: Some(2),
                ..ExploreOptions::default()
            },
        );
        assert!(report.truncated > 0);
        assert!(!report.exhaustive());
    }

    #[test]
    fn state_cap_reports_capping() {
        let u = Universe::symmetric();
        let report = explore(
            &u,
            &ExploreOptions {
                max_states: Some(5),
                ..ExploreOptions::default()
            },
        );
        assert!(report.capped);
        assert!(!report.exhaustive());
        assert_eq!(report.states_explored, 5);
    }
}
