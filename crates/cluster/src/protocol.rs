//! The cluster protocol core, factored out of the event loop so that it
//! can run under *any* scheduler — the stochastic [`crate::engine`]
//! event loop or the bounded exhaustive explorer in `quorum-mc`.
//!
//! ## Why this split exists
//!
//! The engine's per-site state machines (vote gathering, two-phase
//! writes, timeouts/retries, §2.2 install adoption) used to live inside
//! the batch event loop, welded to the RNG-driven transport. That made
//! the *protocol rules* testable only through stochastic schedules. This
//! module extracts every protocol decision into [`ProtocolCore`], which
//! talks to its environment exclusively through the [`Scheduler`] trait:
//!
//! * the stochastic engine implements [`Scheduler`] on top of
//!   [`quorum_des::EventQueue`] (Bernoulli loss, sampled latency,
//!   cancellable timers);
//! * a model checker implements it as a bag of in-flight messages and a
//!   set of pending timers, turning every delivery, drop, and timeout
//!   into an enumerable choice point.
//!
//! Both drivers run the *same* compiled protocol code, so a property
//! verified by exhaustive exploration is a property of the shipping
//! engine, not of a re-model.
//!
//! ## Cross-epoch vote accumulation (the bug this module fixes)
//!
//! A session gathers pledges under one assignment epoch. Two channels
//! used to let pledges from an older epoch count toward a quorum
//! evaluated against a newer spec:
//!
//! 1. **Timeout adoption** — [`ProtocolCore::session_timeout`] adopts
//!    the coordinator's newest assignment on retry but kept the
//!    `votes`/`contributed` accumulators from the old epoch;
//! 2. **Late pledges** — a `ReadValue`/`VoteGrant` sent before an
//!    install could arrive after the session had adopted the new epoch
//!    and still be counted.
//!
//! With spec-only, pairwise jointly-safe installs this mixing happens to
//! be benign for freshness (per-site weights are static, so any set
//! reaching the new threshold is a valid quorum under the new spec), but
//! it silently violates the §2.2 contract that a quorum is gathered
//! under a *single* assignment — the contract weight-changing
//! reassignment (ROADMAP item 5) depends on. The fix: timeouts that
//! adopt a different epoch reset the accumulators and re-seed the
//! coordinator's own pledge, and pledges are epoch-tagged and filtered.
//! [`crate::ClusterConfig::mix_epoch_votes`] restores the pre-fix
//! behavior as an ablation so the model checker can demonstrate it
//! *finds* the bug.

use crate::checker::FreshnessChecker;
use crate::config::ClusterConfig;
use crate::message::{Message, Payload, SessionId, Version, NO_SESSION};
use crate::stats::{ClusterStats, Outcome};
use quorum_core::reassign::SiteAssignment;
use quorum_core::{Access, QuorumSpec, VoteAssignment};
use quorum_des::SimTime;
use std::collections::BTreeMap;

/// Opaque handle to a pending session timer, issued by a [`Scheduler`].
///
/// The stochastic scheduler wraps a [`quorum_des::EventKey`]; a model
/// checker mints its own values. The core never inspects the contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimerToken(u64);

impl TimerToken {
    /// Wraps a scheduler-chosen raw value.
    pub fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw value this token was created with.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Everything the protocol core asks of its environment.
///
/// The contract mirrors the §5.2 message world: `send` hands a message
/// to the transport (which may lose it immediately, delay it, or — in a
/// model checker — hold it as an enumerable choice), and timers drive
/// the bounded-retry machinery. Implementations decide *when* (or
/// *whether*) sent messages come back via
/// [`ProtocolCore::handle_message`] and when armed timers come back via
/// [`ProtocolCore::session_timeout`].
pub trait Scheduler {
    /// Current simulated time; labels session latencies. A model checker
    /// with no clock may return [`SimTime::ZERO`] everywhere.
    fn now(&self) -> SimTime;

    /// Accepts `msg` for eventual (possibly never) delivery. Returns
    /// `false` iff the transport dropped it at send time (Bernoulli
    /// loss); the caller counts the drop.
    fn send(&mut self, msg: Message) -> bool;

    /// Arms the timer for session `id` to fire after `timeout` simulated
    /// time units (a model checker may ignore the duration and treat the
    /// firing instant as a nondeterministic choice).
    fn arm_timer(&mut self, id: SessionId, timeout: f64) -> TimerToken;

    /// Cancels a previously armed timer; `true` iff it was still
    /// pending.
    fn cancel_timer(&mut self, token: TimerToken) -> bool;
}

/// Which part of a session is gathering votes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// Phase 1: gathering `ReadValue`/`VoteGrant` pledges.
    Gather,
    /// Phase 2 (writes only): gathering `CommitAck`s.
    Commit,
}

/// Coordinator-side state of one in-flight session.
#[derive(Debug, Clone)]
struct Session {
    origin: usize,
    kind: Access,
    submitted_at: SimTime,
    measured_index: Option<u64>,
    round: u32,
    phase: SessionPhase,
    votes: u64,
    contributed: Vec<bool>,
    max_version: Version,
    new_version: Version,
    floor: Version,
    spec: QuorumSpec,
    epoch: u64,
    timer: TimerToken,
}

/// Durable per-site replica state.
#[derive(Debug, Clone, Copy)]
struct SiteState {
    version: Version,
    assignment: SiteAssignment,
}

/// Read-only snapshot of one open session, for invariant checkers and
/// schedulers that need to reason about protocol state (e.g. the model
/// checker's partial-order reduction asks whether a delivery can
/// resolve the session).
#[derive(Debug, Clone, Copy)]
pub struct SessionView<'s> {
    /// Coordinator site.
    pub origin: usize,
    /// Read or write.
    pub kind: Access,
    /// Gathering pledges or gathering commit acks.
    pub phase: SessionPhase,
    /// Retry round (0 = first attempt).
    pub round: u32,
    /// Votes accumulated in the current phase.
    pub votes: u64,
    /// Which sites contributed to the current phase.
    pub contributed: &'s [bool],
    /// Assignment epoch the session is gathering under.
    pub epoch: u64,
    /// Quorum spec of that epoch.
    pub spec: QuorumSpec,
    /// Highest version among phase-1 replies.
    pub max_version: Version,
    /// Version a write will install (0 until phase 2).
    pub new_version: Version,
}

/// Read-only snapshot of one site's durable replica state.
#[derive(Debug, Clone, Copy)]
pub struct SiteView {
    /// Stored version of the replicated value.
    pub version: Version,
    /// Installed assignment epoch.
    pub epoch: u64,
    /// Quorum spec installed at that epoch.
    pub spec: QuorumSpec,
}

/// The protocol state machines of every site plus all coordinator-side
/// session state, independent of any particular scheduler.
///
/// The engine's event loop owns one per batch; the model checker clones
/// it freely (cloning is cheap at model-checking scale — a few sites and
/// sessions). All statistics accumulate into [`ProtocolCore::stats`];
/// violation counting lives in the embedded [`FreshnessChecker`].
#[derive(Debug, Clone)]
pub struct ProtocolCore<'a> {
    config: &'a ClusterConfig,
    votes: &'a VoteAssignment,
    num_sites: usize,
    sites: Vec<SiteState>,
    // Ordered by session id (quorum-lint `no-unordered-iteration`):
    // drains and sweeps over open sessions feed stats and canonical
    // encodings, so iteration order must be deterministic.
    sessions: BTreeMap<SessionId, Session>,
    next_session: SessionId,
    checker: FreshnessChecker,
    stats: ClusterStats,
}

impl<'a> ProtocolCore<'a> {
    /// Creates a core with every site at version 0 under `initial_spec`
    /// (epoch 0).
    pub fn new(
        config: &'a ClusterConfig,
        votes: &'a VoteAssignment,
        initial_spec: QuorumSpec,
    ) -> Self {
        let num_sites = votes.num_sites();
        Self {
            config,
            votes,
            num_sites,
            sites: vec![
                SiteState {
                    version: 0,
                    assignment: SiteAssignment {
                        version: 0,
                        spec: initial_spec,
                    },
                };
                num_sites
            ],
            sessions: BTreeMap::new(),
            next_session: NO_SESSION + 1,
            checker: FreshnessChecker::new(),
            stats: ClusterStats::new(&config.latency_bounds),
        }
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Mutable statistics — the driving loop owns submission accounting
    /// (measured reads/writes, unavailability), which depends on
    /// batch-level warm-up state the core does not know about.
    pub fn stats_mut(&mut self) -> &mut ClusterStats {
        &mut self.stats
    }

    /// Moves the accumulated statistics out, leaving empty ones.
    pub fn take_stats(&mut self) -> ClusterStats {
        std::mem::replace(
            &mut self.stats,
            ClusterStats::new(&self.config.latency_bounds),
        )
    }

    /// The freshness checker (floor and violation counts).
    pub fn checker(&self) -> &FreshnessChecker {
        &self.checker
    }

    /// Number of unresolved sessions.
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Ids of unresolved sessions, ascending.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.keys().copied().collect()
    }

    /// Coordinator of session `id`, if the session is still open.
    pub fn session_origin(&self, id: SessionId) -> Option<usize> {
        self.sessions.get(&id).map(|s| s.origin)
    }

    /// Snapshot of session `id`, if still open.
    pub fn session_view(&self, id: SessionId) -> Option<SessionView<'_>> {
        self.sessions.get(&id).map(|s| SessionView {
            origin: s.origin,
            kind: s.kind,
            phase: s.phase,
            round: s.round,
            votes: s.votes,
            contributed: &s.contributed,
            epoch: s.epoch,
            spec: s.spec,
            max_version: s.max_version,
            new_version: s.new_version,
        })
    }

    /// Snapshot of site `site`'s durable state.
    ///
    /// # Panics
    /// Panics if `site` is out of range.
    pub fn site_view(&self, site: usize) -> SiteView {
        let s = &self.sites[site];
        SiteView {
            version: s.version,
            epoch: s.assignment.version,
            spec: s.assignment.spec,
        }
    }

    /// Sends a message, counting the send and an immediate transport
    /// drop.
    fn send(&mut self, sched: &mut impl Scheduler, msg: Message) {
        self.stats.messages_sent += 1;
        if !sched.send(msg) {
            self.stats.messages_dropped += 1;
        }
    }

    fn record_outcome(&mut self, index: Option<u64>, kind: Access, outcome: Outcome) {
        if self.config.record_outcomes {
            if let Some(i) = index {
                self.stats.outcomes[i as usize] = Some((kind, outcome));
            }
        }
    }

    /// Opens a session at an up coordinator: pledge the coordinator's
    /// own votes, arm the round-0 timer, broadcast
    /// [`Payload::VoteRequest`], and resolve immediately if the
    /// coordinator alone already holds a quorum. Returns the session id
    /// (the session may already be resolved on return).
    ///
    /// The caller is responsible for submission accounting and for the
    /// coordinator-down (`Unavailable`) path — both depend on
    /// batch-level measurement state.
    pub fn open_session(
        &mut self,
        origin: usize,
        kind: Access,
        measured_index: Option<u64>,
        sched: &mut impl Scheduler,
    ) -> SessionId {
        let id = self.next_session;
        self.next_session += 1;
        self.stats.sessions_opened += 1;
        let assignment = self.sites[origin].assignment;
        let own = self.votes.votes_of(origin);
        let n = self.num_sites;
        let mut contributed = vec![false; n];
        contributed[origin] = true;
        let timer = sched.arm_timer(id, self.config.timeout_for(0));
        self.sessions.insert(
            id,
            Session {
                origin,
                kind,
                submitted_at: sched.now(),
                measured_index,
                round: 0,
                phase: SessionPhase::Gather,
                votes: own,
                contributed,
                max_version: self.sites[origin].version,
                new_version: 0,
                floor: self.checker.floor(),
                spec: assignment.spec,
                epoch: assignment.version,
                timer,
            },
        );
        for peer in (0..n).filter(|&p| p != origin) {
            self.send(
                sched,
                Message {
                    from: origin,
                    to: peer,
                    session: id,
                    payload: Payload::VoteRequest {
                        kind,
                        epoch: assignment.version,
                        epoch_spec: assignment.spec,
                    },
                },
            );
        }
        // Single-site quorum (e.g. ROWA reads, weighted coordinators).
        if own >= assignment.spec.threshold(kind) {
            self.quorum_reached(id, sched);
        }
        id
    }

    /// Runs the receiving actor's step for a delivered message. The
    /// caller has already decided deliverability (connectivity at the
    /// delivery instant) and counted the delivery.
    pub fn handle_message(&mut self, msg: Message, sched: &mut impl Scheduler) {
        let site = msg.to;
        match msg.payload {
            Payload::VoteRequest {
                kind,
                epoch,
                epoch_spec,
            } => {
                let known = self.sites[site].assignment.version;
                if epoch > known {
                    // Piggybacked propagation: lagging sites catch up
                    // from ordinary traffic.
                    self.sites[site].assignment = SiteAssignment {
                        version: epoch,
                        spec: epoch_spec,
                    };
                    self.stats.installs_applied += 1;
                } else if known > epoch {
                    let a = self.sites[site].assignment;
                    self.send(
                        sched,
                        Message {
                            from: site,
                            to: msg.from,
                            session: msg.session,
                            payload: Payload::VoteDeny {
                                epoch: a.version,
                                epoch_spec: a.spec,
                            },
                        },
                    );
                    return;
                }
                let votes = self.votes.votes_of(site);
                let version = self.sites[site].version;
                // After the catch-up above the replier is exactly on the
                // request's epoch, so the pledge is tagged with it.
                let epoch = self.sites[site].assignment.version;
                let reply = match kind {
                    Access::Read => Payload::ReadValue {
                        votes,
                        version,
                        epoch,
                    },
                    Access::Write => Payload::VoteGrant {
                        votes,
                        version,
                        epoch,
                    },
                };
                self.send(
                    sched,
                    Message {
                        from: site,
                        to: msg.from,
                        session: msg.session,
                        payload: reply,
                    },
                );
            }
            Payload::ReadValue {
                votes,
                version,
                epoch,
            }
            | Payload::VoteGrant {
                votes,
                version,
                epoch,
            } => {
                self.vote_received(msg.session, msg.from, votes, version, epoch, sched);
            }
            Payload::VoteDeny { epoch, epoch_spec } => {
                if epoch > self.sites[site].assignment.version {
                    self.sites[site].assignment = SiteAssignment {
                        version: epoch,
                        spec: epoch_spec,
                    };
                    self.stats.installs_applied += 1;
                }
            }
            Payload::WriteCommit { version } => {
                if version > self.sites[site].version {
                    self.sites[site].version = version;
                }
                let votes = self.votes.votes_of(site);
                self.send(
                    sched,
                    Message {
                        from: site,
                        to: msg.from,
                        session: msg.session,
                        payload: Payload::CommitAck { votes },
                    },
                );
            }
            Payload::CommitAck { votes } => {
                self.ack_received(msg.session, msg.from, votes, sched);
            }
            Payload::Install { epoch, epoch_spec } => {
                if epoch > self.sites[site].assignment.version {
                    self.sites[site].assignment = SiteAssignment {
                        version: epoch,
                        spec: epoch_spec,
                    };
                    self.stats.installs_applied += 1;
                }
            }
        }
    }

    /// A phase-1 pledge arrived at the coordinator.
    fn vote_received(
        &mut self,
        id: SessionId,
        from: usize,
        votes: u64,
        version: Version,
        epoch: u64,
        sched: &mut impl Scheduler,
    ) {
        let Some(s) = self.sessions.get_mut(&id) else {
            return; // session already resolved; stale reply
        };
        if s.phase != SessionPhase::Gather || s.contributed[from] {
            return;
        }
        if epoch != s.epoch && !self.config.mix_epoch_votes {
            // A pledge granted under a different assignment epoch must
            // not count toward this session's quorum: the session's
            // threshold belongs to *its* epoch. (Pre-install pledges
            // arriving after a timeout adopted a newer assignment land
            // here.) The retry machinery re-requests the pledge under
            // the session's current epoch.
            self.stats.stale_grants_ignored += 1;
            return;
        }
        s.contributed[from] = true;
        s.votes += votes;
        s.max_version = s.max_version.max(version);
        if s.votes >= s.spec.threshold(s.kind) {
            self.quorum_reached(id, sched);
        }
    }

    /// A phase-2 ack arrived at the coordinator.
    fn ack_received(&mut self, id: SessionId, from: usize, votes: u64, sched: &mut impl Scheduler) {
        // Single guarded lookup: remove, accumulate, and re-insert if
        // the session stays open. A stale ack for a resolved session is
        // silently ignored rather than a panic path.
        let Some(mut s) = self.sessions.remove(&id) else {
            return;
        };
        if s.phase != SessionPhase::Commit || s.contributed[from] {
            self.sessions.insert(id, s);
            return;
        }
        s.contributed[from] = true;
        s.votes += votes;
        if s.votes >= s.spec.q_w() {
            self.resolve_committed(s, sched);
        } else {
            self.sessions.insert(id, s);
        }
    }

    /// Phase-1 votes reached the threshold: reads commit, writes enter
    /// (or — under the unsafe ablation — skip) the commit phase.
    ///
    /// A single guarded lookup removes the session up front and
    /// re-inserts it only if it stays open, so a call for an
    /// already-resolved session is a no-op instead of a panic.
    fn quorum_reached(&mut self, id: SessionId, sched: &mut impl Scheduler) {
        let Some(mut s) = self.sessions.remove(&id) else {
            return;
        };
        match s.kind {
            Access::Read => self.resolve_committed(s, sched),
            Access::Write if self.config.commit_on_grant => {
                // UNSAFE ablation: client told "committed" before any
                // replica durably holds the new version. The freshness
                // checker exists to catch exactly this.
                s.new_version = s.max_version + 1;
                let (origin, version) = (s.origin, s.new_version);
                self.sites[origin].version = self.sites[origin].version.max(version);
                let n = self.num_sites;
                for peer in (0..n).filter(|&p| p != origin) {
                    self.send(
                        sched,
                        Message {
                            from: origin,
                            to: peer,
                            session: id,
                            payload: Payload::WriteCommit { version },
                        },
                    );
                }
                self.resolve_committed(s, sched);
            }
            Access::Write => {
                s.new_version = s.max_version + 1;
                s.phase = SessionPhase::Commit;
                let origin = s.origin;
                let own = self.votes.votes_of(origin);
                s.votes = own;
                s.contributed.fill(false);
                s.contributed[origin] = true;
                let version = s.new_version;
                let q_w = s.spec.q_w();
                // The coordinator is a replica too: it adopts first.
                self.sites[origin].version = self.sites[origin].version.max(version);
                let n = self.num_sites;
                for peer in (0..n).filter(|&p| p != origin) {
                    self.send(
                        sched,
                        Message {
                            from: origin,
                            to: peer,
                            session: id,
                            payload: Payload::WriteCommit { version },
                        },
                    );
                }
                if own >= q_w {
                    self.resolve_committed(s, sched);
                } else {
                    self.sessions.insert(id, s);
                }
            }
        }
    }

    /// Session timer fired: retry (with backoff and a refreshed
    /// assignment) or resolve `TimedOut`. `origin_up` is the liveness of
    /// the session's coordinator at the firing instant (the core does
    /// not track the failure world).
    ///
    /// Adopting an assignment from a *different* epoch resets the
    /// accumulators (`votes`, `contributed`, and the version gathered
    /// from replies) and re-seeds the coordinator's own pledge: pledges
    /// granted under the old epoch must not count toward the new spec's
    /// threshold. Under [`ClusterConfig::mix_epoch_votes`] the pre-fix
    /// mixing behavior is restored as an ablation.
    pub fn session_timeout(&mut self, id: SessionId, origin_up: bool, sched: &mut impl Scheduler) {
        let Some(s) = self.sessions.get_mut(&id) else {
            return; // cancelled timers never fire; defensive only
        };
        let origin = s.origin;
        if s.round >= self.config.max_retries || !origin_up {
            let s = self
                .sessions
                .remove(&id)
                .expect("session looked up just above");
            self.resolve_timed_out(s, sched);
            return;
        }
        s.round += 1;
        // Adopt whatever assignment the coordinator has learned since —
        // VoteDeny replies and Install broadcasts carrying newer epochs
        // land here.
        let assignment = self.sites[origin].assignment;
        if assignment.version != s.epoch && !self.config.mix_epoch_votes {
            s.votes = self.votes.votes_of(origin);
            s.contributed.fill(false);
            s.contributed[origin] = true;
            s.max_version = self.sites[origin].version;
            self.stats.cross_epoch_resets += 1;
        }
        s.epoch = assignment.version;
        s.spec = assignment.spec;
        s.timer = sched.arm_timer(id, self.config.timeout_for(s.round));
        let (phase, kind, epoch, spec, version) = (s.phase, s.kind, s.epoch, s.spec, s.new_version);
        let pending: Vec<usize> = s
            .contributed
            .iter()
            .enumerate()
            .filter(|&(p, &c)| !c && p != origin)
            .map(|(p, _)| p)
            .collect();
        self.stats.retries += 1;
        for peer in pending {
            let payload = match phase {
                SessionPhase::Gather => Payload::VoteRequest {
                    kind,
                    epoch,
                    epoch_spec: spec,
                },
                SessionPhase::Commit => Payload::WriteCommit { version },
            };
            self.send(
                sched,
                Message {
                    from: origin,
                    to: peer,
                    session: id,
                    payload,
                },
            );
        }
    }

    /// Executes an install at an up `origin`: adopt `spec` at `epoch` if
    /// newer, then broadcast [`Payload::Install`] to every other site.
    /// The caller has already checked the origin's liveness (a down
    /// origin skips its install).
    pub fn apply_install(
        &mut self,
        origin: usize,
        epoch: u64,
        spec: QuorumSpec,
        sched: &mut impl Scheduler,
    ) {
        if epoch > self.sites[origin].assignment.version {
            self.sites[origin].assignment = SiteAssignment {
                version: epoch,
                spec,
            };
            self.stats.installs_applied += 1;
        }
        let n = self.num_sites;
        for peer in (0..n).filter(|&p| p != origin) {
            self.send(
                sched,
                Message {
                    from: origin,
                    to: peer,
                    session: NO_SESSION,
                    payload: Payload::Install {
                        epoch,
                        epoch_spec: spec,
                    },
                },
            );
        }
    }

    fn resolve_committed(&mut self, s: Session, sched: &mut impl Scheduler) {
        sched.cancel_timer(s.timer);
        let latency = sched.now() - s.submitted_at;
        match s.kind {
            Access::Read => {
                self.checker.on_read_committed(s.floor, s.max_version);
                if s.measured_index.is_some() {
                    self.stats.reads_committed += 1;
                    self.stats.read_latency.record(latency);
                }
            }
            Access::Write => {
                self.checker.on_write_committed(s.new_version);
                if s.measured_index.is_some() {
                    self.stats.writes_committed += 1;
                    self.stats.write_latency.record(latency);
                }
            }
        }
        self.record_outcome(s.measured_index, s.kind, Outcome::Committed);
    }

    fn resolve_timed_out(&mut self, s: Session, sched: &mut impl Scheduler) {
        sched.cancel_timer(s.timer);
        if s.measured_index.is_some() {
            match s.kind {
                Access::Read => self.stats.reads_timed_out += 1,
                Access::Write => self.stats.writes_timed_out += 1,
            }
        }
        self.record_outcome(s.measured_index, s.kind, Outcome::TimedOut);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_des::SimParams;

    /// A minimal deterministic scheduler: sent messages pile up in a
    /// vector, timers in a map. Tests deliver and fire by hand.
    #[derive(Debug, Default)]
    struct BagScheduler {
        in_flight: Vec<Message>,
        timers: BTreeMap<u64, SessionId>,
        next_token: u64,
    }

    impl Scheduler for BagScheduler {
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn send(&mut self, msg: Message) -> bool {
            self.in_flight.push(msg);
            true
        }
        fn arm_timer(&mut self, id: SessionId, _timeout: f64) -> TimerToken {
            let raw = self.next_token;
            self.next_token += 1;
            self.timers.insert(raw, id);
            TimerToken::new(raw)
        }
        fn cancel_timer(&mut self, token: TimerToken) -> bool {
            self.timers.remove(&token.raw()).is_some()
        }
    }

    fn test_config(mix: bool) -> ClusterConfig {
        let mut cfg = ClusterConfig::new(SimParams::quick());
        cfg.max_retries = 2;
        cfg.mix_epoch_votes = mix;
        cfg
    }

    /// Regression for the headline bug: a scripted install lands between
    /// retry rounds and flips the spec; the retry must discard the
    /// pledges gathered under the old epoch and re-seed the
    /// coordinator's own vote.
    #[test]
    fn timeout_across_epochs_resets_accumulators() {
        let cfg = test_config(false);
        let votes = VoteAssignment::uniform(3);
        let initial = QuorumSpec::new(2, 3, 3).unwrap();
        let mut core = ProtocolCore::new(&cfg, &votes, initial);
        let mut sched = BagScheduler::default();

        let id = core.open_session(0, Access::Write, None, &mut sched);
        // Site 1 pledges under epoch 0: votes 1 (own) + 1 = 2 < q_w 3.
        core.handle_message(
            Message {
                from: 1,
                to: 0,
                session: id,
                payload: Payload::VoteGrant {
                    votes: 1,
                    version: 0,
                    epoch: 0,
                },
            },
            &mut sched,
        );
        assert_eq!(core.session_view(id).unwrap().votes, 2);

        // Install epoch 1 at site 2, then its broadcast reaches the
        // coordinator before the retry fires.
        let new_spec = QuorumSpec::new(2, 2, 3).unwrap();
        core.apply_install(2, 1, new_spec, &mut sched);
        let install = Message {
            from: 2,
            to: 0,
            session: NO_SESSION,
            payload: Payload::Install {
                epoch: 1,
                epoch_spec: new_spec,
            },
        };
        core.handle_message(install, &mut sched);
        assert_eq!(core.site_view(0).epoch, 1);

        core.session_timeout(id, true, &mut sched);
        let v = core
            .session_view(id)
            .expect("session retries, not resolves");
        assert_eq!(v.epoch, 1, "retry adopts the new epoch");
        assert_eq!(v.spec, new_spec);
        assert_eq!(v.votes, 1, "old-epoch pledge discarded, own vote re-seeded");
        assert_eq!(v.contributed, &[true, false, false]);
        assert_eq!(core.stats().cross_epoch_resets, 1);
    }

    /// The ablation restores the pre-fix mixing: the old-epoch pledge
    /// survives the adoption and counts toward the new threshold.
    #[test]
    fn mix_epoch_votes_ablation_keeps_stale_accumulators() {
        let cfg = test_config(true);
        let votes = VoteAssignment::uniform(3);
        let initial = QuorumSpec::new(2, 3, 3).unwrap();
        let mut core = ProtocolCore::new(&cfg, &votes, initial);
        let mut sched = BagScheduler::default();

        let id = core.open_session(0, Access::Write, None, &mut sched);
        core.handle_message(
            Message {
                from: 1,
                to: 0,
                session: id,
                payload: Payload::VoteGrant {
                    votes: 1,
                    version: 0,
                    epoch: 0,
                },
            },
            &mut sched,
        );
        let new_spec = QuorumSpec::new(2, 2, 3).unwrap();
        core.handle_message(
            Message {
                from: 2,
                to: 0,
                session: NO_SESSION,
                payload: Payload::Install {
                    epoch: 1,
                    epoch_spec: new_spec,
                },
            },
            &mut sched,
        );
        core.session_timeout(id, true, &mut sched);
        let v = core.session_view(id).unwrap();
        assert_eq!(v.epoch, 1);
        assert_eq!(v.votes, 2, "ablation keeps the epoch-0 pledge");
        assert_eq!(core.stats().cross_epoch_resets, 0);
    }

    /// A pledge granted under an older epoch arriving *after* the
    /// session adopted a newer one is ignored — the late-grant channel
    /// of the same bug, which needs no timeout to fire.
    #[test]
    fn stale_epoch_pledge_is_ignored() {
        let cfg = test_config(false);
        let votes = VoteAssignment::uniform(3);
        let initial = QuorumSpec::new(2, 3, 3).unwrap();
        let mut core = ProtocolCore::new(&cfg, &votes, initial);
        let mut sched = BagScheduler::default();

        let id = core.open_session(0, Access::Write, None, &mut sched);
        let new_spec = QuorumSpec::new(2, 2, 3).unwrap();
        core.handle_message(
            Message {
                from: 2,
                to: 0,
                session: NO_SESSION,
                payload: Payload::Install {
                    epoch: 1,
                    epoch_spec: new_spec,
                },
            },
            &mut sched,
        );
        core.session_timeout(id, true, &mut sched); // adopts epoch 1, resets
        assert_eq!(core.session_view(id).unwrap().epoch, 1);

        // The epoch-0 grant from round 0 finally lands.
        core.handle_message(
            Message {
                from: 1,
                to: 0,
                session: id,
                payload: Payload::VoteGrant {
                    votes: 1,
                    version: 0,
                    epoch: 0,
                },
            },
            &mut sched,
        );
        let v = core.session_view(id).unwrap();
        assert_eq!(v.votes, 1, "stale-epoch pledge must not count");
        assert!(!v.contributed[1]);
        assert_eq!(core.stats().stale_grants_ignored, 1);

        // Re-granted under the current epoch it counts: 2 votes reach
        // q_w = 2 and the write advances to its commit phase.
        core.handle_message(
            Message {
                from: 1,
                to: 0,
                session: id,
                payload: Payload::VoteGrant {
                    votes: 1,
                    version: 0,
                    epoch: 1,
                },
            },
            &mut sched,
        );
        let v = core.session_view(id).unwrap();
        assert_eq!(v.phase, SessionPhase::Commit);
    }

    /// Stale deliveries for resolved sessions are ignored, not panics:
    /// the old `expect("session present")` chains are gone.
    #[test]
    fn stale_deliveries_for_resolved_sessions_are_ignored() {
        let cfg = test_config(false);
        let votes = VoteAssignment::uniform(3);
        let initial = QuorumSpec::majority(3); // (2, 2)
        let mut core = ProtocolCore::new(&cfg, &votes, initial);
        let mut sched = BagScheduler::default();

        let id = core.open_session(0, Access::Read, None, &mut sched);
        core.handle_message(
            Message {
                from: 1,
                to: 0,
                session: id,
                payload: Payload::ReadValue {
                    votes: 1,
                    version: 0,
                    epoch: 0,
                },
            },
            &mut sched,
        );
        assert!(core.session_view(id).is_none(), "read committed");

        // Late replies of every session-directed kind: all ignored.
        for payload in [
            Payload::ReadValue {
                votes: 1,
                version: 0,
                epoch: 0,
            },
            Payload::VoteGrant {
                votes: 1,
                version: 0,
                epoch: 0,
            },
            Payload::CommitAck { votes: 1 },
        ] {
            core.handle_message(
                Message {
                    from: 2,
                    to: 0,
                    session: id,
                    payload,
                },
                &mut sched,
            );
        }
        assert_eq!(core.open_sessions(), 0);
        assert_eq!(core.stats().reads_committed, 0, "unmeasured session");
        // Firing a stale timer for the resolved session is also a no-op.
        core.session_timeout(id, true, &mut sched);
        assert_eq!(core.open_sessions(), 0);
    }
}
