//! Message-level serializability (freshness) checking.
//!
//! The instantaneous simulator's `SerializabilityChecker` works on
//! component membership: a read is fresh iff its component saw the last
//! write. In the message world that criterion is too strong *and* too
//! weak — messages cross partitions formed after sending, and commits
//! take time. The right invariant is version-based:
//!
//! > a committed read must return a version at least as new as the
//! > newest write that **committed before the read was submitted**.
//!
//! Writes committing while the read is in flight are concurrent with it;
//! one-copy serializability lets the read order before them. The engine
//! therefore captures [`FreshnessChecker::floor`] when a read session
//! opens and validates the session's result version against it on
//! commit. Under quorum intersection (conditions 1–2 of §2.1, plus the
//! joint-safety restriction on installs) and monotone version adoption,
//! the safe two-phase protocol never violates this; the
//! `commit_on_grant` ablation does, which is how the checker itself is
//! tested.

use crate::message::Version;

/// Tracks the globally newest committed version and counts stale reads.
#[derive(Debug, Clone, Default)]
pub struct FreshnessChecker {
    latest_committed: Version,
    reads_checked: u64,
    violations: u64,
}

impl FreshnessChecker {
    /// Creates a checker with no committed writes (version 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// The freshness floor for a read submitted *now*: the newest version
    /// any client has been told is committed.
    pub fn floor(&self) -> Version {
        self.latest_committed
    }

    /// Records a client-visible write commit of `version`.
    pub fn on_write_committed(&mut self, version: Version) {
        self.latest_committed = self.latest_committed.max(version);
    }

    /// Validates a committed read: `floor` is the checker's
    /// [`FreshnessChecker::floor`] captured when the session opened, and
    /// `result` is the highest version among the read quorum's replies.
    /// Returns `true` iff the read is fresh.
    pub fn on_read_committed(&mut self, floor: Version, result: Version) -> bool {
        self.reads_checked += 1;
        let fresh = result >= floor;
        if !fresh {
            self.violations += 1;
        }
        fresh
    }

    /// Committed reads validated so far.
    pub fn reads_checked(&self) -> u64 {
        self.reads_checked
    }

    /// Stale reads detected so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_and_stale_reads_are_distinguished() {
        let mut c = FreshnessChecker::new();
        assert_eq!(c.floor(), 0);
        c.on_write_committed(3);
        c.on_write_committed(2); // out-of-order commit news: floor keeps max
        assert_eq!(c.floor(), 3);

        let floor = c.floor();
        assert!(c.on_read_committed(floor, 3), "exact version is fresh");
        assert!(c.on_read_committed(floor, 5), "newer is fresh too");
        assert!(!c.on_read_committed(floor, 2), "older is stale");
        assert_eq!(c.reads_checked(), 3);
        assert_eq!(c.violations(), 1);
    }

    #[test]
    fn concurrent_write_does_not_retroactively_staleify() {
        let mut c = FreshnessChecker::new();
        c.on_write_committed(1);
        let floor = c.floor(); // read submitted here
        c.on_write_committed(2); // commits while the read is in flight
                                 // The read may legally return version 1: it ordered before the
                                 // concurrent write.
        assert!(c.on_read_committed(floor, 1));
        assert_eq!(c.violations(), 0);
    }
}
