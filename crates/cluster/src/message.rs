//! Typed messages exchanged by cluster sites.
//!
//! The paper's §2 protocol narrates quorum gathering as an instantaneous
//! predicate ("can the component raise `q_r` votes?"). This module is the
//! message-level refinement: every step of that predicate becomes an
//! explicit RPC, so latency, loss, and partial delivery are first-class.
//!
//! | Paper step (§2)                      | Message                      |
//! |--------------------------------------|------------------------------|
//! | poll sites for their votes           | [`Payload::VoteRequest`]     |
//! | a site pledges votes to a write      | [`Payload::VoteGrant`]       |
//! | a site ships its current copy        | [`Payload::ReadValue`]       |
//! | a site refuses (stale assignment)    | [`Payload::VoteDeny`]        |
//! | the write is applied at the quorum   | [`Payload::WriteCommit`]     |
//! | application acknowledged             | [`Payload::CommitAck`]       |
//! | §2.2 reassignment propagation        | [`Payload::Install`]         |
//!
//! The two-phase write (`VoteGrant` then `WriteCommit`/`CommitAck`) and
//! the epoch piggyback are *extensions* beyond the paper, needed because
//! a message world — unlike the paper's instantaneous one — can lose the
//! second half of an update.

use quorum_core::{Access, QuorumSpec};

/// Identifier of one client-visible quorum-gathering session.
pub type SessionId = u64;

/// Monotone version counter of the replicated value.
pub type Version = u64;

/// Session id used by messages that belong to no session (installs).
pub const NO_SESSION: SessionId = 0;

/// The protocol-level content of a message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Payload {
    /// Coordinator asks a site to pledge its votes to `kind`. Carries the
    /// coordinator's assignment epoch and spec so lagging sites catch up
    /// from ordinary traffic (piggybacked §2.2 propagation).
    VoteRequest {
        /// Read or write.
        kind: Access,
        /// Coordinator's assignment epoch.
        epoch: u64,
        /// Coordinator's quorum spec (installed at `epoch`).
        epoch_spec: QuorumSpec,
    },
    /// A site pledges `votes` to a read and ships its current version —
    /// the versioned read value of §2.1 ("read the copy with the highest
    /// version number in the quorum").
    ReadValue {
        /// The responding site's votes.
        votes: u64,
        /// The responding site's stored version.
        version: Version,
        /// Assignment epoch the pledge was granted under. The
        /// coordinator ignores pledges whose epoch differs from its
        /// session's, so a pre-install pledge cannot count toward a
        /// quorum gathered under a later assignment.
        epoch: u64,
    },
    /// A site pledges `votes` to a write (phase 1); the version lets the
    /// coordinator pick `max + 1` for the new value.
    VoteGrant {
        /// The responding site's votes.
        votes: u64,
        /// The responding site's stored version.
        version: Version,
        /// Assignment epoch the grant was granted under (see
        /// [`Payload::ReadValue::epoch`]).
        epoch: u64,
    },
    /// A site refuses because it holds a *newer* quorum assignment than
    /// the request's epoch; carries that assignment so the coordinator
    /// adopts it before retrying.
    VoteDeny {
        /// The denying site's (newer) epoch.
        epoch: u64,
        /// The assignment installed at that epoch.
        epoch_spec: QuorumSpec,
    },
    /// Phase 2 of a write: install `version` at the site.
    WriteCommit {
        /// The new version being installed.
        version: Version,
    },
    /// A site acknowledges a [`Payload::WriteCommit`], re-pledging its
    /// votes; the write is client-visible once acks reach `q_w`.
    CommitAck {
        /// The acknowledging site's votes.
        votes: u64,
    },
    /// Scripted §2.2 quorum reassignment: adopt `epoch_spec` if `epoch`
    /// is newer than the receiver's current assignment.
    Install {
        /// Epoch of the new assignment.
        epoch: u64,
        /// The new quorum spec.
        epoch_spec: QuorumSpec,
    },
}

/// One in-flight message between two sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Message {
    /// Sending site.
    pub from: usize,
    /// Destination site.
    pub to: usize,
    /// Session the message belongs to ([`NO_SESSION`] for installs).
    pub session: SessionId,
    /// Protocol content.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_small_and_copyable() {
        // The event queue stores messages by value; keep them compact.
        assert!(std::mem::size_of::<Message>() <= 64);
        let m = Message {
            from: 0,
            to: 1,
            session: 7,
            payload: Payload::CommitAck { votes: 3 },
        };
        let n = m; // Copy
        assert_eq!(m, n);
    }
}
