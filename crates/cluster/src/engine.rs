//! The actor-style cluster engine: one deterministic event loop in which
//! every site is a state machine exchanging typed messages.
//!
//! ## Execution model
//!
//! Each batch runs the same §5.2 stochastic environment as the
//! instantaneous simulator — identical failure renewal processes,
//! identical Poisson access stream, identical workload sampling, all on
//! the same derived RNG streams — but resolves each access through a
//! multi-message quorum-gathering *session*:
//!
//! 1. the submitting site (coordinator) opens a session, pledges its own
//!    votes, and broadcasts [`Payload::VoteRequest`];
//! 2. reachable sites answer with [`Payload::ReadValue`] /
//!    [`Payload::VoteGrant`] (or [`Payload::VoteDeny`] if they hold a
//!    newer assignment epoch);
//! 3. reads commit when pledged votes reach `q_r`; writes additionally
//!    run a commit phase ([`Payload::WriteCommit`] →
//!    [`Payload::CommitAck`]) and commit when acks reach `q_w`;
//! 4. a cancellable per-session timer drives bounded exponential-backoff
//!    retries; exhausted retries resolve [`Outcome::TimedOut`], a down
//!    coordinator resolves [`Outcome::Unavailable`].
//!
//! The protocol rules themselves live in [`crate::protocol`]: the state
//! machines are a [`ProtocolCore`] driven through the
//! [`Scheduler`](crate::protocol::Scheduler) trait. This event loop
//! supplies the stochastic environment — Bernoulli loss, sampled
//! latencies, failure processes, the Poisson access stream — while the
//! `quorum-mc` model checker drives the *same* core through an
//! exhaustive scheduler.
//!
//! Messages cross the topology's connectivity: a message is delivered
//! iff sender and receiver are up and mutually reachable *at the
//! delivery instant* (see [`crate::net`]).
//!
//! ## Degeneracy
//!
//! Under [`ClusterConfig::ideal`] (zero latency, zero loss, no retries)
//! the whole cascade of a session collapses onto its dispatch instant:
//! the FIFO tie-break of the event queue processes every request and
//! reply before simulated time advances, so a session commits exactly
//! when the instantaneous simulator would grant — access for access,
//! not merely in distribution. `tests/cluster_degeneracy.rs` asserts
//! this against [`quorum_replica::Simulation`] on ring, fully-connected,
//! and bus topologies.

use crate::config::ClusterConfig;
use crate::message::{Message, SessionId};
use crate::net::NetConfig;
use crate::protocol::{ProtocolCore, Scheduler, TimerToken};
use crate::stats::{ClusterStats, Outcome};
use quorum_core::{Access, QuorumSpec, VoteAssignment};
use quorum_des::{EventKey, EventQueue, PoissonProcess, SimTime};
use quorum_graph::{ComponentCache, NetworkState, Topology, TopologyEvent};
use quorum_replica::failure::FailureProcesses;
use quorum_replica::Workload;
use quorum_stats::rng::{derive_seed, rng_from_seed};
use rand::rngs::StdRng;
use rand::Rng;

/// One scheduled event of the cluster event loop.
///
/// Public so alternative drivers (e.g. the demonstration
/// [`Scheduler`] impl on [`EventQueue<Event>`]) can name the queue's
/// payload type; the engine itself constructs and consumes these
/// internally.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// Site `i` flips up/down (failure renewal process).
    SiteTransition(usize),
    /// Link `i` flips up/down.
    LinkTransition(usize),
    /// The next Poisson access arrives.
    Access,
    /// An in-flight message reaches its destination.
    Deliver(Message),
    /// The session's retry timer fires.
    SessionTimeout(SessionId),
    /// Scripted install step `i` executes at its origin.
    Install(usize),
}

/// The trivial ideal-network driver: an [`EventQueue`] over [`Event`]
/// *is* a scheduler — sends become zero-latency, loss-free deliveries
/// and timers become plain cancellable entries.
///
/// The engine itself layers loss and latency on top via [`NetScheduler`];
/// this impl exists so a [`ProtocolCore`] can be driven directly off a
/// bare queue (unit tests, examples) with no stochastic machinery at all.
impl Scheduler for EventQueue<Event> {
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }

    fn send(&mut self, msg: Message) -> bool {
        self.schedule_in(0.0, Event::Deliver(msg));
        true
    }

    fn arm_timer(&mut self, id: SessionId, timeout: f64) -> TimerToken {
        TimerToken::new(
            self.schedule_cancellable_in(timeout, Event::SessionTimeout(id))
                .raw(),
        )
    }

    fn cancel_timer(&mut self, token: TimerToken) -> bool {
        self.cancel(EventKey::from_raw(token.raw()))
    }
}

/// The stochastic transport: Bernoulli loss at the sender, sampled
/// latency otherwise, timers as cancellable queue entries. Borrows the
/// batch's queue and network RNG for the duration of one protocol step.
struct NetScheduler<'q> {
    queue: &'q mut EventQueue<Event>,
    net: &'q NetConfig,
    rng: &'q mut StdRng,
}

impl Scheduler for NetScheduler<'_> {
    fn now(&self) -> SimTime {
        self.queue.now()
    }

    fn send(&mut self, msg: Message) -> bool {
        if self.net.loss > 0.0 && self.rng.random::<f64>() < self.net.loss {
            return false;
        }
        let latency = self.net.latency.sample(self.rng);
        self.queue.schedule_in(latency, Event::Deliver(msg));
        true
    }

    fn arm_timer(&mut self, id: SessionId, timeout: f64) -> TimerToken {
        TimerToken::new(
            self.queue
                .schedule_cancellable_in(timeout, Event::SessionTimeout(id))
                .raw(),
        )
    }

    fn cancel_timer(&mut self, token: TimerToken) -> bool {
        self.queue.cancel(EventKey::from_raw(token.raw()))
    }
}

/// The message-level cluster simulation of one topology.
///
/// Mirrors [`quorum_replica::Simulation`]'s construction and batching
/// surface so callers can run both against identical environments.
pub struct ClusterEngine<'a> {
    topology: &'a Topology,
    config: ClusterConfig,
    votes: VoteAssignment,
    initial_spec: QuorumSpec,
    workload: Workload,
    master_seed: u64,
    batches_run: u64,
    site_reliabilities: Option<Vec<f64>>,
    link_reliabilities: Option<Vec<f64>>,
}

impl<'a> ClusterEngine<'a> {
    /// Creates an engine with uniform one-vote-per-site assignment.
    pub fn new(
        topology: &'a Topology,
        config: ClusterConfig,
        spec: QuorumSpec,
        workload: Workload,
        master_seed: u64,
    ) -> Self {
        Self::with_votes(
            topology,
            config,
            spec,
            VoteAssignment::uniform(topology.num_sites()),
            workload,
            master_seed,
        )
    }

    /// Creates an engine with an explicit vote assignment.
    ///
    /// # Panics
    /// Panics on inconsistent dimensions, an invalid configuration, or a
    /// spec/install script that is not jointly safe (see
    /// [`crate::config::jointly_safe`]).
    pub fn with_votes(
        topology: &'a Topology,
        config: ClusterConfig,
        spec: QuorumSpec,
        votes: VoteAssignment,
        workload: Workload,
        master_seed: u64,
    ) -> Self {
        config.validate(spec, topology.num_sites());
        assert_eq!(
            votes.num_sites(),
            topology.num_sites(),
            "vote assignment must cover every site"
        );
        assert_eq!(
            workload.num_sites(),
            topology.num_sites(),
            "workload must cover every site"
        );
        assert_eq!(
            spec.total(),
            votes.total(),
            "quorum spec must match the vote total"
        );
        Self {
            topology,
            config,
            votes,
            initial_spec: spec,
            workload,
            master_seed,
            batches_run: 0,
            site_reliabilities: None,
            link_reliabilities: None,
        }
    }

    /// Overrides per-site reliabilities (same semantics as
    /// [`quorum_replica::Simulation::with_site_reliabilities`]).
    ///
    /// # Panics
    /// Panics on length mismatch or probabilities outside `(0, 1)`.
    pub fn with_site_reliabilities(mut self, reliabilities: Vec<f64>) -> Self {
        assert_eq!(
            reliabilities.len(),
            self.topology.num_sites(),
            "one reliability per site"
        );
        for &p in &reliabilities {
            assert!(p > 0.0 && p < 1.0, "site reliability must lie in (0,1)");
        }
        self.site_reliabilities = Some(reliabilities);
        self
    }

    /// Overrides per-link reliabilities.
    ///
    /// # Panics
    /// Panics on length mismatch or probabilities outside `(0, 1)`.
    pub fn with_link_reliabilities(mut self, reliabilities: Vec<f64>) -> Self {
        assert_eq!(
            reliabilities.len(),
            self.topology.num_links(),
            "one reliability per link"
        );
        for &p in &reliabilities {
            assert!(p > 0.0 && p < 1.0, "link reliability must lie in (0,1)");
        }
        self.link_reliabilities = Some(reliabilities);
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Runs the next batch (auto-incrementing batch index).
    pub fn run_batch(&mut self) -> ClusterStats {
        let i = self.batches_run;
        self.batches_run += 1;
        self.run_indexed_batch(i)
    }

    /// Runs one warm-up + measurement batch with an explicit index. The
    /// batch dispatches `warmup + batch_accesses` accesses, then keeps
    /// processing events until every open session has resolved.
    pub fn run_indexed_batch(&mut self, batch_index: u64) -> ClusterStats {
        let n = self.topology.num_sites();
        let m = self.topology.num_links();
        let seed = derive_seed(self.master_seed, batch_index);

        // Streams 1–3 are identical to the instantaneous simulator's;
        // stream 4 is new and feeds only the network (loss/latency), so
        // an ideal network leaves the shared streams bit-for-bit aligned.
        let fail_rng: StdRng = rng_from_seed(derive_seed(seed, 1));
        let access_rng: StdRng = rng_from_seed(derive_seed(seed, 2));
        let workload_rng: StdRng = rng_from_seed(derive_seed(seed, 3));
        let net_rng: StdRng = rng_from_seed(derive_seed(seed, 4));

        let mut procs = FailureProcesses::new(
            &self.config.params,
            n,
            m,
            self.site_reliabilities.as_deref(),
            self.link_reliabilities.as_deref(),
        );
        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut fail_rng = fail_rng;
        procs.schedule_initial(
            &mut queue,
            &mut fail_rng,
            Event::SiteTransition,
            Event::LinkTransition,
        );
        let access_proc = PoissonProcess::new(n as f64 / self.config.params.mu_access);
        let mut access_rng = access_rng;
        queue.schedule(
            SimTime::new(access_proc.next_gap(&mut access_rng)),
            Event::Access,
        );
        for (i, step) in self.config.installs.iter().enumerate() {
            queue.schedule(SimTime::new(step.at), Event::Install(i));
        }

        let mut core = ProtocolCore::new(&self.config, &self.votes, self.initial_spec);
        if self.config.record_outcomes {
            core.stats_mut().outcomes = vec![None; self.config.params.batch_accesses as usize];
        }

        let warmup = self.config.params.warmup_accesses;
        let target = warmup + self.config.params.batch_accesses;

        let mut batch = Batch {
            topology: self.topology,
            votes: &self.votes,
            config: &self.config,
            queue,
            state: NetworkState::all_up(self.topology),
            cache: if self.config.delta_kernel {
                ComponentCache::incremental()
            } else {
                ComponentCache::new()
            },
            procs,
            fail_rng,
            access_rng,
            workload_rng,
            net_rng,
            access_proc,
            workload: self.workload.clone(),
            core,
            warmup,
            target,
            accesses_seen: 0,
            measured_start: None,
            now: SimTime::ZERO,
        };

        while batch.accesses_seen < target || batch.core.open_sessions() > 0 {
            let (t, ev) = batch.queue.pop().expect("regenerative streams never drain");
            batch.now = t;
            match ev {
                Event::SiteTransition(i) => {
                    batch.core.stats_mut().site_transitions += 1;
                    let (up, gap) = batch.procs.site_transition(i, &mut batch.fail_rng);
                    if batch.state.set_site(i, up) {
                        batch.cache.apply_event(
                            batch.topology,
                            &batch.state,
                            batch.votes.as_slice(),
                            TopologyEvent::Site { site: i, up },
                        );
                    }
                    batch.queue.schedule_in(gap, Event::SiteTransition(i));
                }
                Event::LinkTransition(i) => {
                    batch.core.stats_mut().link_transitions += 1;
                    let (up, gap) = batch.procs.link_transition(i, &mut batch.fail_rng);
                    if batch.state.set_link(i, up) {
                        batch.cache.apply_event(
                            batch.topology,
                            &batch.state,
                            batch.votes.as_slice(),
                            TopologyEvent::Link { link: i, up },
                        );
                    }
                    batch.queue.schedule_in(gap, Event::LinkTransition(i));
                }
                Event::Access => batch.dispatch_access(),
                Event::Deliver(msg) => batch.deliver(msg),
                Event::SessionTimeout(id) => batch.session_timeout(id),
                Event::Install(idx) => batch.scripted_install(idx),
            }
        }

        let delta = batch.cache.delta_counters();
        let violations = batch.core.checker().violations();
        let mut stats = batch.core.take_stats();
        stats.delta_merges = delta.merges;
        stats.delta_rescans = delta.rescans;
        stats.delta_noops = delta.noops;
        stats.full_recomputes = delta.full_recomputes;
        stats.events_processed = batch.queue.popped();
        stats.timers_cancelled = batch.queue.cancelled();
        stats.freshness_violations = violations;
        if let Some(start) = batch.measured_start {
            stats.measured_duration = batch.now - start;
        }
        stats
    }
}

/// All mutable state of one running batch: the stochastic environment
/// (failure processes, access stream, transport RNG) wrapped around the
/// scheduler-agnostic [`ProtocolCore`].
struct Batch<'a> {
    topology: &'a Topology,
    votes: &'a VoteAssignment,
    config: &'a ClusterConfig,
    queue: EventQueue<Event>,
    state: NetworkState,
    cache: ComponentCache,
    procs: FailureProcesses,
    fail_rng: StdRng,
    access_rng: StdRng,
    workload_rng: StdRng,
    net_rng: StdRng,
    access_proc: PoissonProcess,
    workload: Workload,
    core: ProtocolCore<'a>,
    warmup: u64,
    target: u64,
    accesses_seen: u64,
    measured_start: Option<SimTime>,
    now: SimTime,
}

impl Batch<'_> {
    /// Handles an access arrival: sample the workload and either resolve
    /// `Unavailable` (origin down — no session opened) or hand the
    /// access to the protocol core.
    fn dispatch_access(&mut self) {
        self.accesses_seen += 1;
        if self.accesses_seen < self.target {
            let gap = self.access_proc.next_gap(&mut self.access_rng);
            self.queue.schedule_in(gap, Event::Access);
        }
        let (kind, origin) = self.workload.sample(&mut self.workload_rng);
        let measured = self.accesses_seen > self.warmup;
        let measured_index = measured.then(|| self.accesses_seen - self.warmup - 1);
        if measured {
            if self.measured_start.is_none() {
                self.measured_start = Some(self.now);
            }
            match kind {
                Access::Read => self.core.stats_mut().reads_submitted += 1,
                Access::Write => self.core.stats_mut().writes_submitted += 1,
            }
        }
        if !self.state.site_up(origin) {
            if measured {
                match kind {
                    Access::Read => self.core.stats_mut().reads_unavailable += 1,
                    Access::Write => self.core.stats_mut().writes_unavailable += 1,
                }
            }
            if self.config.record_outcomes {
                if let Some(i) = measured_index {
                    self.core.stats_mut().outcomes[i as usize] = Some((kind, Outcome::Unavailable));
                }
            }
            return;
        }
        let mut sched = NetScheduler {
            queue: &mut self.queue,
            net: &self.config.net,
            rng: &mut self.net_rng,
        };
        self.core
            .open_session(origin, kind, measured_index, &mut sched);
    }

    /// Processes a delivery: drop if the endpoints are not mutually
    /// reachable at this instant, else run the receiving actor's step.
    fn deliver(&mut self, msg: Message) {
        let connected = {
            let view = self
                .cache
                .view(self.topology, &self.state, self.votes.as_slice());
            view.connected(msg.from, msg.to)
        };
        if !connected {
            self.core.stats_mut().messages_dropped += 1;
            return;
        }
        self.core.stats_mut().messages_delivered += 1;
        let mut sched = NetScheduler {
            queue: &mut self.queue,
            net: &self.config.net,
            rng: &mut self.net_rng,
        };
        self.core.handle_message(msg, &mut sched);
    }

    /// Session timer fired: the core retries or resolves `TimedOut`,
    /// given the coordinator's liveness at this instant.
    fn session_timeout(&mut self, id: SessionId) {
        let Some(origin) = self.core.session_origin(id) else {
            return; // cancelled timers never fire; defensive only
        };
        let origin_up = self.state.site_up(origin);
        let mut sched = NetScheduler {
            queue: &mut self.queue,
            net: &self.config.net,
            rng: &mut self.net_rng,
        };
        self.core.session_timeout(id, origin_up, &mut sched);
    }

    /// Executes a scripted install: the origin (if up) adopts the new
    /// assignment and broadcasts it. Epochs follow script order.
    fn scripted_install(&mut self, idx: usize) {
        let step = self.config.installs[idx];
        if !self.state.site_up(step.origin) {
            return; // a down origin skips its install
        }
        let epoch = (idx + 1) as u64;
        let mut sched = NetScheduler {
            queue: &mut self.queue,
            net: &self.config.net,
            rng: &mut self.net_rng,
        };
        self.core
            .apply_install(step.origin, epoch, step.spec, &mut sched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InstallStep;
    use crate::net::{LatencyDist, NetConfig};
    use quorum_des::SimParams;

    fn quick_params() -> SimParams {
        SimParams {
            warmup_accesses: 300,
            batch_accesses: 3_000,
            ..SimParams::paper()
        }
    }

    #[test]
    fn ideal_cluster_matches_high_availability() {
        let topo = Topology::fully_connected(9);
        let mut eng = ClusterEngine::new(
            &topo,
            ClusterConfig::ideal(quick_params()),
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            3,
        );
        let stats = eng.run_batch();
        assert_eq!(stats.submitted(), 3_000);
        assert!(stats.availability() > 0.9, "{}", stats.availability());
        assert_eq!(stats.freshness_violations, 0);
        assert_eq!(stats.retries, 0, "no retries configured");
        assert!(stats.messages_sent > 0);
        // Messages still queued when the batch drains (late replies to
        // already-resolved sessions) are neither delivered nor dropped.
        assert!(stats.messages_delivered + stats.messages_dropped <= stats.messages_sent);
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = Topology::ring(9);
        let run = |seed| {
            let mut eng = ClusterEngine::new(
                &topo,
                ClusterConfig::new(quick_params()),
                QuorumSpec::majority(9),
                Workload::uniform(9, 0.5),
                seed,
            );
            let s = eng.run_batch();
            (
                s.reads_committed,
                s.writes_committed,
                s.messages_sent,
                s.events_processed,
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn latency_shows_up_in_histograms() {
        let topo = Topology::fully_connected(7);
        let mut cfg = ClusterConfig::new(quick_params());
        cfg.net = NetConfig {
            latency: LatencyDist::Constant(0.05),
            loss: 0.0,
        };
        // Bucket edges chosen off the exact hop sums (0.10, 0.20), which
        // float rounding can land on either side of.
        cfg.latency_bounds = vec![0.09, 0.15, 0.3];
        let mut eng = ClusterEngine::new(
            &topo,
            cfg,
            QuorumSpec::majority(7),
            Workload::uniform(7, 0.5),
            5,
        );
        let stats = eng.run_batch();
        // A retry-free read needs request + reply: 2 hops of 0.05, the
        // [0.09, 0.15) bucket; retried sessions add timeout-sized
        // latencies but are a small minority.
        let reads = stats.read_latency.observations();
        assert!(reads > 0);
        assert!(stats.read_latency.counts()[1] as f64 > 0.8 * reads as f64);
        assert!(stats.read_latency.mean() >= 0.099);
        // A retry-free write needs request + grant + commit + ack: 4 hops
        // of 0.05, the [0.15, 0.3) bucket.
        let writes = stats.write_latency.observations();
        assert!(stats.write_latency.counts()[2] as f64 > 0.8 * writes as f64);
        assert!(stats.write_latency.mean() >= 0.199);
        assert!(stats.goodput() > 0.0);
    }

    #[test]
    fn loss_triggers_retries_and_safe_commits() {
        let topo = Topology::fully_connected(9);
        let mut cfg = ClusterConfig::new(quick_params());
        cfg.net = NetConfig {
            latency: LatencyDist::Constant(0.02),
            loss: 0.25,
        };
        let mut eng = ClusterEngine::new(
            &topo,
            cfg,
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            7,
        );
        let stats = eng.run_batch();
        assert!(stats.retries > 0, "25% loss must force retries");
        assert!(stats.messages_dropped > 0);
        assert!(stats.availability() > 0.5, "{}", stats.availability());
        assert_eq!(
            stats.freshness_violations, 0,
            "two-phase commit keeps reads fresh under loss"
        );
        assert!(stats.timers_cancelled > 0, "commits void their timers");
    }

    #[test]
    fn installs_propagate_and_stay_safe() {
        let topo = Topology::fully_connected(10);
        let mut cfg = ClusterConfig::new(quick_params());
        cfg.net = NetConfig {
            latency: LatencyDist::Constant(0.02),
            loss: 0.10,
        };
        cfg.installs = vec![InstallStep {
            at: 50.0,
            origin: 0,
            spec: QuorumSpec::new(5, 7, 10).unwrap(),
        }];
        let mut eng = ClusterEngine::new(
            &topo,
            cfg,
            QuorumSpec::majority(10),
            Workload::uniform(10, 0.5),
            9,
        );
        let stats = eng.run_batch();
        assert!(
            stats.installs_applied >= 5,
            "install must reach most sites (got {})",
            stats.installs_applied
        );
        assert_eq!(stats.freshness_violations, 0);
    }

    #[test]
    fn commit_on_grant_ablation_is_caught_by_the_checker() {
        // Lossy network + unsafe early commit: the client hears
        // "committed" while WriteCommits are still dropping. Later reads
        // land on stale replicas and the checker must notice.
        let topo = Topology::fully_connected(9);
        let mut cfg = ClusterConfig::new(quick_params());
        cfg.net = NetConfig {
            latency: LatencyDist::Constant(0.05),
            loss: 0.4,
        };
        cfg.commit_on_grant = true;
        let mut eng = ClusterEngine::new(
            &topo,
            cfg,
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            13,
        );
        let stats = eng.run_batch();
        assert!(
            stats.freshness_violations > 0,
            "unsafe commit under 40% loss must produce stale reads"
        );
    }

    #[test]
    fn retries_across_installs_reset_cross_epoch_accumulators() {
        // Lossy network with an install mid-run: some sessions time out
        // with an old-epoch accumulator, adopt the new assignment on
        // retry, and must discard their stale pledges. The dedicated
        // counter proves the path is exercised at stochastic scale (the
        // unit- and model-level evidence lives in `protocol` and
        // `quorum-mc`).
        let topo = Topology::fully_connected(10);
        let mut cfg = ClusterConfig::new(quick_params());
        cfg.net = NetConfig {
            latency: LatencyDist::Constant(0.08),
            loss: 0.35,
        };
        cfg.session_timeout = 0.2;
        cfg.installs = vec![InstallStep {
            at: 30.0,
            origin: 3,
            spec: QuorumSpec::new(5, 7, 10).unwrap(),
        }];
        let mut eng = ClusterEngine::new(
            &topo,
            cfg,
            QuorumSpec::majority(10),
            Workload::uniform(10, 0.5),
            21,
        );
        let stats = eng.run_batch();
        assert!(stats.retries > 0);
        assert!(
            stats.cross_epoch_resets > 0,
            "an install under heavy loss must catch sessions mid-retry"
        );
        assert_eq!(stats.freshness_violations, 0);
    }

    #[test]
    fn outcome_sequence_covers_every_measured_access() {
        let topo = Topology::ring(9);
        let mut cfg = ClusterConfig::ideal(quick_params());
        cfg.record_outcomes = true;
        let mut eng = ClusterEngine::new(
            &topo,
            cfg,
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            17,
        );
        let stats = eng.run_batch();
        assert_eq!(stats.outcomes.len(), 3_000);
        assert!(stats.outcomes.iter().all(Option::is_some));
        let committed = stats
            .outcomes
            .iter()
            .filter(|o| matches!(o, Some((_, Outcome::Committed))))
            .count() as u64;
        assert_eq!(committed, stats.committed());
    }

    #[test]
    fn batches_are_independent_streams() {
        let topo = Topology::ring(9);
        let mut eng = ClusterEngine::new(
            &topo,
            ClusterConfig::ideal(quick_params()),
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            3,
        );
        let a = eng.run_batch();
        let b = eng.run_batch();
        assert_ne!(
            (a.reads_committed, a.writes_committed),
            (b.reads_committed, b.writes_committed)
        );
    }

    #[test]
    fn bare_event_queue_is_an_ideal_scheduler() {
        // The demonstration impl: drive the protocol core directly off
        // an EventQueue with no loss/latency machinery.
        let cfg = ClusterConfig::ideal(SimParams::quick());
        let votes = VoteAssignment::uniform(3);
        let mut core = ProtocolCore::new(&cfg, &votes, QuorumSpec::majority(3));
        let mut queue: EventQueue<Event> = EventQueue::new();
        let id = core.open_session(0, Access::Write, Some(0), &mut queue);
        // Drain deliveries until the session resolves: request → grant →
        // commit → ack, all at time zero.
        while core.session_view(id).is_some() {
            let (_, ev) = queue.pop().expect("protocol must make progress");
            match ev {
                Event::Deliver(msg) => core.handle_message(msg, &mut queue),
                Event::SessionTimeout(_) => unreachable!("timer was cancelled"),
                _ => unreachable!("no other events scheduled"),
            }
        }
        assert_eq!(core.stats().writes_committed, 1);
        assert_eq!(core.checker().violations(), 0);
    }
}
