//! The actor-style cluster engine: one deterministic event loop in which
//! every site is a state machine exchanging typed messages.
//!
//! ## Execution model
//!
//! Each batch runs the same §5.2 stochastic environment as the
//! instantaneous simulator — identical failure renewal processes,
//! identical Poisson access stream, identical workload sampling, all on
//! the same derived RNG streams — but resolves each access through a
//! multi-message quorum-gathering *session*:
//!
//! 1. the submitting site (coordinator) opens a session, pledges its own
//!    votes, and broadcasts [`Payload::VoteRequest`];
//! 2. reachable sites answer with [`Payload::ReadValue`] /
//!    [`Payload::VoteGrant`] (or [`Payload::VoteDeny`] if they hold a
//!    newer assignment epoch);
//! 3. reads commit when pledged votes reach `q_r`; writes additionally
//!    run a commit phase ([`Payload::WriteCommit`] →
//!    [`Payload::CommitAck`]) and commit when acks reach `q_w`;
//! 4. a cancellable per-session timer drives bounded exponential-backoff
//!    retries; exhausted retries resolve [`Outcome::TimedOut`], a down
//!    coordinator resolves [`Outcome::Unavailable`].
//!
//! Messages cross the topology's connectivity: a message is delivered
//! iff sender and receiver are up and mutually reachable *at the
//! delivery instant* (see [`crate::net`]).
//!
//! ## Degeneracy
//!
//! Under [`ClusterConfig::ideal`] (zero latency, zero loss, no retries)
//! the whole cascade of a session collapses onto its dispatch instant:
//! the FIFO tie-break of the event queue processes every request and
//! reply before simulated time advances, so a session commits exactly
//! when the instantaneous simulator would grant — access for access,
//! not merely in distribution. `tests/cluster_degeneracy.rs` asserts
//! this against [`quorum_replica::Simulation`] on ring, fully-connected,
//! and bus topologies.

use crate::checker::FreshnessChecker;
use crate::config::ClusterConfig;
use crate::message::{Message, Payload, SessionId, Version, NO_SESSION};
use crate::stats::{ClusterStats, Outcome};
use quorum_core::reassign::SiteAssignment;
use quorum_core::{Access, QuorumSpec, VoteAssignment};
use quorum_des::{EventKey, EventQueue, PoissonProcess, SimTime};
use quorum_graph::{ComponentCache, NetworkState, Topology, TopologyEvent};
use quorum_replica::failure::FailureProcesses;
use quorum_replica::Workload;
use quorum_stats::rng::{derive_seed, rng_from_seed};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// One scheduled event of the cluster event loop.
#[derive(Debug, Clone, Copy)]
enum Event {
    SiteTransition(usize),
    LinkTransition(usize),
    Access,
    Deliver(Message),
    SessionTimeout(SessionId),
    Install(usize),
}

/// Which part of a session is gathering votes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Phase 1: gathering `ReadValue`/`VoteGrant` pledges.
    Gather,
    /// Phase 2 (writes only): gathering `CommitAck`s.
    Commit,
}

/// Coordinator-side state of one in-flight session.
#[derive(Debug, Clone)]
struct Session {
    origin: usize,
    kind: Access,
    submitted_at: SimTime,
    measured_index: Option<u64>,
    round: u32,
    phase: Phase,
    votes: u64,
    contributed: Vec<bool>,
    max_version: Version,
    new_version: Version,
    floor: Version,
    spec: QuorumSpec,
    epoch: u64,
    timer: EventKey,
}

/// Durable per-site replica state.
#[derive(Debug, Clone, Copy)]
struct SiteState {
    version: Version,
    assignment: SiteAssignment,
}

/// The message-level cluster simulation of one topology.
///
/// Mirrors [`quorum_replica::Simulation`]'s construction and batching
/// surface so callers can run both against identical environments.
pub struct ClusterEngine<'a> {
    topology: &'a Topology,
    config: ClusterConfig,
    votes: VoteAssignment,
    initial_spec: QuorumSpec,
    workload: Workload,
    master_seed: u64,
    batches_run: u64,
    site_reliabilities: Option<Vec<f64>>,
    link_reliabilities: Option<Vec<f64>>,
}

impl<'a> ClusterEngine<'a> {
    /// Creates an engine with uniform one-vote-per-site assignment.
    pub fn new(
        topology: &'a Topology,
        config: ClusterConfig,
        spec: QuorumSpec,
        workload: Workload,
        master_seed: u64,
    ) -> Self {
        Self::with_votes(
            topology,
            config,
            spec,
            VoteAssignment::uniform(topology.num_sites()),
            workload,
            master_seed,
        )
    }

    /// Creates an engine with an explicit vote assignment.
    ///
    /// # Panics
    /// Panics on inconsistent dimensions, an invalid configuration, or a
    /// spec/install script that is not jointly safe (see
    /// [`crate::config::jointly_safe`]).
    pub fn with_votes(
        topology: &'a Topology,
        config: ClusterConfig,
        spec: QuorumSpec,
        votes: VoteAssignment,
        workload: Workload,
        master_seed: u64,
    ) -> Self {
        config.validate(spec, topology.num_sites());
        assert_eq!(
            votes.num_sites(),
            topology.num_sites(),
            "vote assignment must cover every site"
        );
        assert_eq!(
            workload.num_sites(),
            topology.num_sites(),
            "workload must cover every site"
        );
        assert_eq!(
            spec.total(),
            votes.total(),
            "quorum spec must match the vote total"
        );
        Self {
            topology,
            config,
            votes,
            initial_spec: spec,
            workload,
            master_seed,
            batches_run: 0,
            site_reliabilities: None,
            link_reliabilities: None,
        }
    }

    /// Overrides per-site reliabilities (same semantics as
    /// [`quorum_replica::Simulation::with_site_reliabilities`]).
    ///
    /// # Panics
    /// Panics on length mismatch or probabilities outside `(0, 1)`.
    pub fn with_site_reliabilities(mut self, reliabilities: Vec<f64>) -> Self {
        assert_eq!(
            reliabilities.len(),
            self.topology.num_sites(),
            "one reliability per site"
        );
        for &p in &reliabilities {
            assert!(p > 0.0 && p < 1.0, "site reliability must lie in (0,1)");
        }
        self.site_reliabilities = Some(reliabilities);
        self
    }

    /// Overrides per-link reliabilities.
    ///
    /// # Panics
    /// Panics on length mismatch or probabilities outside `(0, 1)`.
    pub fn with_link_reliabilities(mut self, reliabilities: Vec<f64>) -> Self {
        assert_eq!(
            reliabilities.len(),
            self.topology.num_links(),
            "one reliability per link"
        );
        for &p in &reliabilities {
            assert!(p > 0.0 && p < 1.0, "link reliability must lie in (0,1)");
        }
        self.link_reliabilities = Some(reliabilities);
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Runs the next batch (auto-incrementing batch index).
    pub fn run_batch(&mut self) -> ClusterStats {
        let i = self.batches_run;
        self.batches_run += 1;
        self.run_indexed_batch(i)
    }

    /// Runs one warm-up + measurement batch with an explicit index. The
    /// batch dispatches `warmup + batch_accesses` accesses, then keeps
    /// processing events until every open session has resolved.
    pub fn run_indexed_batch(&mut self, batch_index: u64) -> ClusterStats {
        let n = self.topology.num_sites();
        let m = self.topology.num_links();
        let seed = derive_seed(self.master_seed, batch_index);

        // Streams 1–3 are identical to the instantaneous simulator's;
        // stream 4 is new and feeds only the network (loss/latency), so
        // an ideal network leaves the shared streams bit-for-bit aligned.
        let fail_rng: StdRng = rng_from_seed(derive_seed(seed, 1));
        let access_rng: StdRng = rng_from_seed(derive_seed(seed, 2));
        let workload_rng: StdRng = rng_from_seed(derive_seed(seed, 3));
        let net_rng: StdRng = rng_from_seed(derive_seed(seed, 4));

        let mut procs = FailureProcesses::new(
            &self.config.params,
            n,
            m,
            self.site_reliabilities.as_deref(),
            self.link_reliabilities.as_deref(),
        );
        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut fail_rng = fail_rng;
        procs.schedule_initial(
            &mut queue,
            &mut fail_rng,
            Event::SiteTransition,
            Event::LinkTransition,
        );
        let access_proc = PoissonProcess::new(n as f64 / self.config.params.mu_access);
        let mut access_rng = access_rng;
        queue.schedule(
            SimTime::new(access_proc.next_gap(&mut access_rng)),
            Event::Access,
        );
        for (i, step) in self.config.installs.iter().enumerate() {
            queue.schedule(SimTime::new(step.at), Event::Install(i));
        }

        let mut stats = ClusterStats::new(&self.config.latency_bounds);
        if self.config.record_outcomes {
            stats.outcomes = vec![None; self.config.params.batch_accesses as usize];
        }

        let warmup = self.config.params.warmup_accesses;
        let target = warmup + self.config.params.batch_accesses;

        let mut batch = Batch {
            topology: self.topology,
            votes: &self.votes,
            config: &self.config,
            queue,
            state: NetworkState::all_up(self.topology),
            cache: if self.config.delta_kernel {
                ComponentCache::incremental()
            } else {
                ComponentCache::new()
            },
            procs,
            fail_rng,
            access_rng,
            workload_rng,
            net_rng,
            access_proc,
            workload: self.workload.clone(),
            sites: vec![
                SiteState {
                    version: 0,
                    assignment: SiteAssignment {
                        version: 0,
                        spec: self.initial_spec,
                    },
                };
                n
            ],
            sessions: BTreeMap::new(),
            next_session: NO_SESSION + 1,
            checker: FreshnessChecker::new(),
            stats,
            warmup,
            target,
            accesses_seen: 0,
            measured_start: None,
            now: SimTime::ZERO,
        };

        while batch.accesses_seen < target || !batch.sessions.is_empty() {
            let (t, ev) = batch.queue.pop().expect("regenerative streams never drain");
            batch.now = t;
            match ev {
                Event::SiteTransition(i) => {
                    batch.stats.site_transitions += 1;
                    let (up, gap) = batch.procs.site_transition(i, &mut batch.fail_rng);
                    if batch.state.set_site(i, up) {
                        batch.cache.apply_event(
                            batch.topology,
                            &batch.state,
                            batch.votes.as_slice(),
                            TopologyEvent::Site { site: i, up },
                        );
                    }
                    batch.queue.schedule_in(gap, Event::SiteTransition(i));
                }
                Event::LinkTransition(i) => {
                    batch.stats.link_transitions += 1;
                    let (up, gap) = batch.procs.link_transition(i, &mut batch.fail_rng);
                    if batch.state.set_link(i, up) {
                        batch.cache.apply_event(
                            batch.topology,
                            &batch.state,
                            batch.votes.as_slice(),
                            TopologyEvent::Link { link: i, up },
                        );
                    }
                    batch.queue.schedule_in(gap, Event::LinkTransition(i));
                }
                Event::Access => batch.dispatch_access(),
                Event::Deliver(msg) => batch.deliver(msg),
                Event::SessionTimeout(id) => batch.session_timeout(id),
                Event::Install(idx) => batch.scripted_install(idx),
            }
        }

        let delta = batch.cache.delta_counters();
        let mut stats = batch.stats;
        stats.delta_merges = delta.merges;
        stats.delta_rescans = delta.rescans;
        stats.delta_noops = delta.noops;
        stats.full_recomputes = delta.full_recomputes;
        stats.events_processed = batch.queue.popped();
        stats.timers_cancelled = batch.queue.cancelled();
        stats.freshness_violations = batch.checker.violations();
        if let Some(start) = batch.measured_start {
            stats.measured_duration = batch.now - start;
        }
        stats
    }
}

/// All mutable state of one running batch.
struct Batch<'a> {
    topology: &'a Topology,
    votes: &'a VoteAssignment,
    config: &'a ClusterConfig,
    queue: EventQueue<Event>,
    state: NetworkState,
    cache: ComponentCache,
    procs: FailureProcesses,
    fail_rng: StdRng,
    access_rng: StdRng,
    workload_rng: StdRng,
    net_rng: StdRng,
    access_proc: PoissonProcess,
    workload: Workload,
    sites: Vec<SiteState>,
    // Ordered by session id (quorum-lint `no-unordered-iteration`):
    // all access today is keyed, but any future drain/sweep over open
    // sessions feeds stats and must see a deterministic order.
    sessions: BTreeMap<SessionId, Session>,
    next_session: SessionId,
    checker: FreshnessChecker,
    stats: ClusterStats,
    warmup: u64,
    target: u64,
    accesses_seen: u64,
    measured_start: Option<SimTime>,
    now: SimTime,
}

impl Batch<'_> {
    /// Sends a message: Bernoulli loss at the sender, latency-delayed
    /// delivery otherwise.
    fn send(&mut self, from: usize, to: usize, session: SessionId, payload: Payload) {
        self.stats.messages_sent += 1;
        if self.config.net.loss > 0.0 && self.net_rng.random::<f64>() < self.config.net.loss {
            self.stats.messages_dropped += 1;
            return;
        }
        let latency = self.config.net.latency.sample(&mut self.net_rng);
        self.queue.schedule_in(
            latency,
            Event::Deliver(Message {
                from,
                to,
                session,
                payload,
            }),
        );
    }

    fn record_outcome(&mut self, index: Option<u64>, kind: Access, outcome: Outcome) {
        if self.config.record_outcomes {
            if let Some(i) = index {
                self.stats.outcomes[i as usize] = Some((kind, outcome));
            }
        }
    }

    /// Handles an access arrival: sample the workload, open a session
    /// (or resolve `Unavailable` if the origin is down), broadcast the
    /// vote requests, and arm the session timer.
    fn dispatch_access(&mut self) {
        self.accesses_seen += 1;
        if self.accesses_seen < self.target {
            let gap = self.access_proc.next_gap(&mut self.access_rng);
            self.queue.schedule_in(gap, Event::Access);
        }
        let (kind, origin) = self.workload.sample(&mut self.workload_rng);
        let measured = self.accesses_seen > self.warmup;
        let measured_index = measured.then(|| self.accesses_seen - self.warmup - 1);
        if measured {
            if self.measured_start.is_none() {
                self.measured_start = Some(self.now);
            }
            match kind {
                Access::Read => self.stats.reads_submitted += 1,
                Access::Write => self.stats.writes_submitted += 1,
            }
        }
        if !self.state.site_up(origin) {
            if measured {
                match kind {
                    Access::Read => self.stats.reads_unavailable += 1,
                    Access::Write => self.stats.writes_unavailable += 1,
                }
            }
            self.record_outcome(measured_index, kind, Outcome::Unavailable);
            return;
        }

        let id = self.next_session;
        self.next_session += 1;
        self.stats.sessions_opened += 1;
        let assignment = self.sites[origin].assignment;
        let own = self.votes.votes_of(origin);
        let n = self.topology.num_sites();
        let mut contributed = vec![false; n];
        contributed[origin] = true;
        let timer = self
            .queue
            .schedule_cancellable_in(self.config.timeout_for(0), Event::SessionTimeout(id));
        self.sessions.insert(
            id,
            Session {
                origin,
                kind,
                submitted_at: self.now,
                measured_index,
                round: 0,
                phase: Phase::Gather,
                votes: own,
                contributed,
                max_version: self.sites[origin].version,
                new_version: 0,
                floor: self.checker.floor(),
                spec: assignment.spec,
                epoch: assignment.version,
                timer,
            },
        );
        for peer in (0..n).filter(|&p| p != origin) {
            self.send(
                origin,
                peer,
                id,
                Payload::VoteRequest {
                    kind,
                    epoch: assignment.version,
                    epoch_spec: assignment.spec,
                },
            );
        }
        // Single-site quorum (e.g. ROWA reads, weighted coordinators).
        if own >= assignment.spec.threshold(kind) {
            self.quorum_reached(id);
        }
    }

    /// Processes a delivery: drop if the endpoints are not mutually
    /// reachable at this instant, else run the receiving actor's step.
    fn deliver(&mut self, msg: Message) {
        let connected = {
            let view = self
                .cache
                .view(self.topology, &self.state, self.votes.as_slice());
            view.connected(msg.from, msg.to)
        };
        if !connected {
            self.stats.messages_dropped += 1;
            return;
        }
        self.stats.messages_delivered += 1;
        let site = msg.to;
        match msg.payload {
            Payload::VoteRequest {
                kind,
                epoch,
                epoch_spec,
            } => {
                let known = self.sites[site].assignment.version;
                if epoch > known {
                    // Piggybacked propagation: lagging sites catch up
                    // from ordinary traffic.
                    self.sites[site].assignment = SiteAssignment {
                        version: epoch,
                        spec: epoch_spec,
                    };
                    self.stats.installs_applied += 1;
                } else if known > epoch {
                    let a = self.sites[site].assignment;
                    self.send(
                        site,
                        msg.from,
                        msg.session,
                        Payload::VoteDeny {
                            epoch: a.version,
                            epoch_spec: a.spec,
                        },
                    );
                    return;
                }
                let votes = self.votes.votes_of(site);
                let version = self.sites[site].version;
                let reply = match kind {
                    Access::Read => Payload::ReadValue { votes, version },
                    Access::Write => Payload::VoteGrant { votes, version },
                };
                self.send(site, msg.from, msg.session, reply);
            }
            Payload::ReadValue { votes, version } | Payload::VoteGrant { votes, version } => {
                self.vote_received(msg.session, msg.from, votes, version);
            }
            Payload::VoteDeny { epoch, epoch_spec } => {
                if epoch > self.sites[site].assignment.version {
                    self.sites[site].assignment = SiteAssignment {
                        version: epoch,
                        spec: epoch_spec,
                    };
                    self.stats.installs_applied += 1;
                }
            }
            Payload::WriteCommit { version } => {
                if version > self.sites[site].version {
                    self.sites[site].version = version;
                }
                let votes = self.votes.votes_of(site);
                self.send(site, msg.from, msg.session, Payload::CommitAck { votes });
            }
            Payload::CommitAck { votes } => {
                self.ack_received(msg.session, msg.from, votes);
            }
            Payload::Install { epoch, epoch_spec } => {
                if epoch > self.sites[site].assignment.version {
                    self.sites[site].assignment = SiteAssignment {
                        version: epoch,
                        spec: epoch_spec,
                    };
                    self.stats.installs_applied += 1;
                }
            }
        }
    }

    /// A phase-1 pledge arrived at the coordinator.
    fn vote_received(&mut self, id: SessionId, from: usize, votes: u64, version: Version) {
        let Some(s) = self.sessions.get_mut(&id) else {
            return; // session already resolved; stale reply
        };
        if s.phase != Phase::Gather || s.contributed[from] {
            return;
        }
        s.contributed[from] = true;
        s.votes += votes;
        s.max_version = s.max_version.max(version);
        if s.votes >= s.spec.threshold(s.kind) {
            self.quorum_reached(id);
        }
    }

    /// A phase-2 ack arrived at the coordinator.
    fn ack_received(&mut self, id: SessionId, from: usize, votes: u64) {
        let Some(s) = self.sessions.get_mut(&id) else {
            return;
        };
        if s.phase != Phase::Commit || s.contributed[from] {
            return;
        }
        s.contributed[from] = true;
        s.votes += votes;
        if s.votes >= s.spec.q_w() {
            let s = self.sessions.remove(&id).expect("session present");
            self.resolve_committed(s);
        }
    }

    /// Phase-1 votes reached the threshold: reads commit, writes enter
    /// (or — under the unsafe ablation — skip) the commit phase.
    fn quorum_reached(&mut self, id: SessionId) {
        let kind = self.sessions.get(&id).expect("session present").kind;
        match kind {
            Access::Read => {
                let s = self.sessions.remove(&id).expect("session present");
                self.resolve_committed(s);
            }
            Access::Write if self.config.commit_on_grant => {
                // UNSAFE ablation: client told "committed" before any
                // replica durably holds the new version. The freshness
                // checker exists to catch exactly this.
                let mut s = self.sessions.remove(&id).expect("session present");
                s.new_version = s.max_version + 1;
                let (origin, version) = (s.origin, s.new_version);
                self.sites[origin].version = self.sites[origin].version.max(version);
                let n = self.topology.num_sites();
                for peer in (0..n).filter(|&p| p != origin) {
                    self.send(origin, peer, id, Payload::WriteCommit { version });
                }
                self.resolve_committed(s);
            }
            Access::Write => {
                let (origin, version, own, q_w) = {
                    let s = self.sessions.get_mut(&id).expect("session present");
                    s.new_version = s.max_version + 1;
                    s.phase = Phase::Commit;
                    let origin = s.origin;
                    let own = self.votes.votes_of(origin);
                    s.votes = own;
                    s.contributed.fill(false);
                    s.contributed[origin] = true;
                    (origin, s.new_version, own, s.spec.q_w())
                };
                // The coordinator is a replica too: it adopts first.
                self.sites[origin].version = self.sites[origin].version.max(version);
                let n = self.topology.num_sites();
                for peer in (0..n).filter(|&p| p != origin) {
                    self.send(origin, peer, id, Payload::WriteCommit { version });
                }
                if own >= q_w {
                    let s = self.sessions.remove(&id).expect("session present");
                    self.resolve_committed(s);
                }
            }
        }
    }

    /// Session timer fired: retry (with backoff and a refreshed
    /// assignment) or resolve `TimedOut`.
    fn session_timeout(&mut self, id: SessionId) {
        let Some(s) = self.sessions.get_mut(&id) else {
            return; // cancelled timers never fire; defensive only
        };
        let origin = s.origin;
        if s.round >= self.config.max_retries || !self.state.site_up(origin) {
            let s = self.sessions.remove(&id).expect("session present");
            self.resolve_timed_out(s);
            return;
        }
        s.round += 1;
        // Adopt whatever assignment the coordinator has learned since —
        // VoteDeny replies carrying newer epochs land here.
        let assignment = self.sites[origin].assignment;
        s.epoch = assignment.version;
        s.spec = assignment.spec;
        s.timer = self
            .queue
            .schedule_cancellable_in(self.config.timeout_for(s.round), Event::SessionTimeout(id));
        let (phase, kind, epoch, spec, version) = (s.phase, s.kind, s.epoch, s.spec, s.new_version);
        let pending: Vec<usize> = s
            .contributed
            .iter()
            .enumerate()
            .filter(|&(p, &c)| !c && p != origin)
            .map(|(p, _)| p)
            .collect();
        self.stats.retries += 1;
        for peer in pending {
            match phase {
                Phase::Gather => self.send(
                    origin,
                    peer,
                    id,
                    Payload::VoteRequest {
                        kind,
                        epoch,
                        epoch_spec: spec,
                    },
                ),
                Phase::Commit => self.send(origin, peer, id, Payload::WriteCommit { version }),
            }
        }
    }

    /// Executes a scripted install: the origin (if up) adopts the new
    /// assignment and broadcasts it. Epochs follow script order.
    fn scripted_install(&mut self, idx: usize) {
        let step = self.config.installs[idx];
        if !self.state.site_up(step.origin) {
            return; // a down origin skips its install
        }
        let epoch = (idx + 1) as u64;
        if epoch > self.sites[step.origin].assignment.version {
            self.sites[step.origin].assignment = SiteAssignment {
                version: epoch,
                spec: step.spec,
            };
            self.stats.installs_applied += 1;
        }
        let n = self.topology.num_sites();
        for peer in (0..n).filter(|&p| p != step.origin) {
            self.send(
                step.origin,
                peer,
                NO_SESSION,
                Payload::Install {
                    epoch,
                    epoch_spec: step.spec,
                },
            );
        }
    }

    fn resolve_committed(&mut self, s: Session) {
        self.queue.cancel(s.timer);
        let latency = self.now - s.submitted_at;
        match s.kind {
            Access::Read => {
                self.checker.on_read_committed(s.floor, s.max_version);
                if s.measured_index.is_some() {
                    self.stats.reads_committed += 1;
                    self.stats.read_latency.record(latency);
                }
            }
            Access::Write => {
                self.checker.on_write_committed(s.new_version);
                if s.measured_index.is_some() {
                    self.stats.writes_committed += 1;
                    self.stats.write_latency.record(latency);
                }
            }
        }
        self.record_outcome(s.measured_index, s.kind, Outcome::Committed);
    }

    fn resolve_timed_out(&mut self, s: Session) {
        self.queue.cancel(s.timer);
        if s.measured_index.is_some() {
            match s.kind {
                Access::Read => self.stats.reads_timed_out += 1,
                Access::Write => self.stats.writes_timed_out += 1,
            }
        }
        self.record_outcome(s.measured_index, s.kind, Outcome::TimedOut);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InstallStep;
    use crate::net::{LatencyDist, NetConfig};
    use quorum_des::SimParams;

    fn quick_params() -> SimParams {
        SimParams {
            warmup_accesses: 300,
            batch_accesses: 3_000,
            ..SimParams::paper()
        }
    }

    #[test]
    fn ideal_cluster_matches_high_availability() {
        let topo = Topology::fully_connected(9);
        let mut eng = ClusterEngine::new(
            &topo,
            ClusterConfig::ideal(quick_params()),
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            3,
        );
        let stats = eng.run_batch();
        assert_eq!(stats.submitted(), 3_000);
        assert!(stats.availability() > 0.9, "{}", stats.availability());
        assert_eq!(stats.freshness_violations, 0);
        assert_eq!(stats.retries, 0, "no retries configured");
        assert!(stats.messages_sent > 0);
        // Messages still queued when the batch drains (late replies to
        // already-resolved sessions) are neither delivered nor dropped.
        assert!(stats.messages_delivered + stats.messages_dropped <= stats.messages_sent);
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = Topology::ring(9);
        let run = |seed| {
            let mut eng = ClusterEngine::new(
                &topo,
                ClusterConfig::new(quick_params()),
                QuorumSpec::majority(9),
                Workload::uniform(9, 0.5),
                seed,
            );
            let s = eng.run_batch();
            (
                s.reads_committed,
                s.writes_committed,
                s.messages_sent,
                s.events_processed,
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn latency_shows_up_in_histograms() {
        let topo = Topology::fully_connected(7);
        let mut cfg = ClusterConfig::new(quick_params());
        cfg.net = NetConfig {
            latency: LatencyDist::Constant(0.05),
            loss: 0.0,
        };
        // Bucket edges chosen off the exact hop sums (0.10, 0.20), which
        // float rounding can land on either side of.
        cfg.latency_bounds = vec![0.09, 0.15, 0.3];
        let mut eng = ClusterEngine::new(
            &topo,
            cfg,
            QuorumSpec::majority(7),
            Workload::uniform(7, 0.5),
            5,
        );
        let stats = eng.run_batch();
        // A retry-free read needs request + reply: 2 hops of 0.05, the
        // [0.09, 0.15) bucket; retried sessions add timeout-sized
        // latencies but are a small minority.
        let reads = stats.read_latency.observations();
        assert!(reads > 0);
        assert!(stats.read_latency.counts()[1] as f64 > 0.8 * reads as f64);
        assert!(stats.read_latency.mean() >= 0.099);
        // A retry-free write needs request + grant + commit + ack: 4 hops
        // of 0.05, the [0.15, 0.3) bucket.
        let writes = stats.write_latency.observations();
        assert!(stats.write_latency.counts()[2] as f64 > 0.8 * writes as f64);
        assert!(stats.write_latency.mean() >= 0.199);
        assert!(stats.goodput() > 0.0);
    }

    #[test]
    fn loss_triggers_retries_and_safe_commits() {
        let topo = Topology::fully_connected(9);
        let mut cfg = ClusterConfig::new(quick_params());
        cfg.net = NetConfig {
            latency: LatencyDist::Constant(0.02),
            loss: 0.25,
        };
        let mut eng = ClusterEngine::new(
            &topo,
            cfg,
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            7,
        );
        let stats = eng.run_batch();
        assert!(stats.retries > 0, "25% loss must force retries");
        assert!(stats.messages_dropped > 0);
        assert!(stats.availability() > 0.5, "{}", stats.availability());
        assert_eq!(
            stats.freshness_violations, 0,
            "two-phase commit keeps reads fresh under loss"
        );
        assert!(stats.timers_cancelled > 0, "commits void their timers");
    }

    #[test]
    fn installs_propagate_and_stay_safe() {
        let topo = Topology::fully_connected(10);
        let mut cfg = ClusterConfig::new(quick_params());
        cfg.net = NetConfig {
            latency: LatencyDist::Constant(0.02),
            loss: 0.10,
        };
        cfg.installs = vec![InstallStep {
            at: 50.0,
            origin: 0,
            spec: QuorumSpec::new(5, 7, 10).unwrap(),
        }];
        let mut eng = ClusterEngine::new(
            &topo,
            cfg,
            QuorumSpec::majority(10),
            Workload::uniform(10, 0.5),
            9,
        );
        let stats = eng.run_batch();
        assert!(
            stats.installs_applied >= 5,
            "install must reach most sites (got {})",
            stats.installs_applied
        );
        assert_eq!(stats.freshness_violations, 0);
    }

    #[test]
    fn commit_on_grant_ablation_is_caught_by_the_checker() {
        // Lossy network + unsafe early commit: the client hears
        // "committed" while WriteCommits are still dropping. Later reads
        // land on stale replicas and the checker must notice.
        let topo = Topology::fully_connected(9);
        let mut cfg = ClusterConfig::new(quick_params());
        cfg.net = NetConfig {
            latency: LatencyDist::Constant(0.05),
            loss: 0.4,
        };
        cfg.commit_on_grant = true;
        let mut eng = ClusterEngine::new(
            &topo,
            cfg,
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            13,
        );
        let stats = eng.run_batch();
        assert!(
            stats.freshness_violations > 0,
            "unsafe commit under 40% loss must produce stale reads"
        );
    }

    #[test]
    fn outcome_sequence_covers_every_measured_access() {
        let topo = Topology::ring(9);
        let mut cfg = ClusterConfig::ideal(quick_params());
        cfg.record_outcomes = true;
        let mut eng = ClusterEngine::new(
            &topo,
            cfg,
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            17,
        );
        let stats = eng.run_batch();
        assert_eq!(stats.outcomes.len(), 3_000);
        assert!(stats.outcomes.iter().all(Option::is_some));
        let committed = stats
            .outcomes
            .iter()
            .filter(|o| matches!(o, Some((_, Outcome::Committed))))
            .count() as u64;
        assert_eq!(committed, stats.committed());
    }

    #[test]
    fn batches_are_independent_streams() {
        let topo = Topology::ring(9);
        let mut eng = ClusterEngine::new(
            &topo,
            ClusterConfig::ideal(quick_params()),
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            3,
        );
        let a = eng.run_batch();
        let b = eng.run_batch();
        assert_ne!(
            (a.reads_committed, a.writes_committed),
            (b.reads_committed, b.writes_committed)
        );
    }
}
