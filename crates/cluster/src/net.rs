//! The link model: per-message latency distributions and loss.
//!
//! Delivery semantics: a message sent at time `t` is subjected to a
//! Bernoulli loss draw at the sender; survivors are scheduled for
//! delivery at `t + latency` and are delivered **iff the endpoints are
//! up and mutually reachable at the delivery instant** — a partition
//! that forms while a message is in flight swallows it. With
//! [`NetConfig::ideal`] (zero latency, zero loss) the model degenerates
//! to the paper's instantaneous world.

use rand::Rng;

/// Per-message latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyDist {
    /// Every message takes exactly this long (0 = instantaneous).
    Constant(f64),
    /// Uniform over `[min, max)`.
    Uniform {
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (exclusive).
        max: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean latency.
        mean: f64,
    },
}

impl LatencyDist {
    /// Draws one latency. Constant latencies consume no randomness, so an
    /// ideal network leaves the network RNG stream untouched.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            LatencyDist::Constant(c) => c,
            LatencyDist::Uniform { min, max } => min + rng.random::<f64>() * (max - min),
            LatencyDist::Exponential { mean } => {
                let u: f64 = rng.random();
                -mean * (1.0 - u).ln()
            }
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyDist::Constant(c) => c,
            LatencyDist::Uniform { min, max } => 0.5 * (min + max),
            LatencyDist::Exponential { mean } => mean,
        }
    }

    /// Validates parameters (non-negative, ordered bounds).
    ///
    /// # Panics
    /// Panics on negative or inverted parameters.
    pub fn validate(&self) {
        match *self {
            LatencyDist::Constant(c) => assert!(c >= 0.0, "latency must be non-negative"),
            LatencyDist::Uniform { min, max } => {
                assert!(
                    min >= 0.0 && max >= min,
                    "uniform bounds must be 0 <= min <= max"
                );
            }
            LatencyDist::Exponential { mean } => {
                assert!(mean >= 0.0, "mean latency must be non-negative");
            }
        }
    }
}

/// The network configuration shared by every site pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Per-message delivery latency.
    pub latency: LatencyDist,
    /// Independent per-message loss probability in `[0, 1)`.
    pub loss: f64,
}

impl NetConfig {
    /// The degenerate network: zero latency, zero loss. Under it the
    /// cluster engine reproduces the instantaneous simulator exactly.
    pub fn ideal() -> Self {
        Self {
            latency: LatencyDist::Constant(0.0),
            loss: 0.0,
        }
    }

    /// Validates parameters.
    ///
    /// # Panics
    /// Panics if `loss` is outside `[0, 1)` or the latency is invalid.
    pub fn validate(&self) {
        self.latency.validate();
        assert!(
            (0.0..1.0).contains(&self.loss),
            "loss probability must lie in [0, 1)"
        );
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_stats::rng::rng_from_seed;

    #[test]
    fn constant_latency_consumes_no_randomness() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(1);
        let d = LatencyDist::Constant(0.25);
        for _ in 0..5 {
            assert_eq!(d.sample(&mut a), 0.25);
        }
        // Untouched stream still matches a fresh clone.
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn samples_respect_distribution_shape() {
        let mut rng = rng_from_seed(7);
        let u = LatencyDist::Uniform { min: 0.1, max: 0.3 };
        let mut sum = 0.0;
        for _ in 0..4_000 {
            let x = u.sample(&mut rng);
            assert!((0.1..0.3).contains(&x));
            sum += x;
        }
        assert!((sum / 4_000.0 - u.mean()).abs() < 0.01);

        let e = LatencyDist::Exponential { mean: 0.5 };
        let mean: f64 = (0..4_000).map(|_| e.sample(&mut rng)).sum::<f64>() / 4_000.0;
        assert!((mean - 0.5).abs() < 0.05, "exponential mean {mean}");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn loss_of_one_rejected() {
        NetConfig {
            latency: LatencyDist::Constant(0.0),
            loss: 1.0,
        }
        .validate();
    }
}
