//! Message-level quorum RPC engine.
//!
//! The paper (§5.2) evaluates quorum assignments in an *instantaneous*
//! world: an access atomically inspects its component and succeeds iff
//! the component can raise the quorum. This crate refines that world
//! into an actor-style, deterministic message-passing cluster layered on
//! the same DES substrate:
//!
//! * every site is a small state machine ([`engine`]) exchanging typed
//!   messages ([`message`]) — vote requests/grants/denies, versioned
//!   read values and write commits, and §2.2 `Install` propagation;
//! * links carry configurable per-message latency distributions and a
//!   loss probability ([`net`]); delivery additionally requires the
//!   endpoints to be mutually reachable at the delivery instant, driven
//!   by the same `Topology`/`NetworkState` failure processes as the
//!   instantaneous simulator;
//! * reads and writes become multi-message quorum-gathering sessions
//!   with per-session timeouts and bounded exponential-backoff retries,
//!   resolving to client-visible [`stats::Outcome`]s;
//! * a version-based freshness checker ([`checker`]) asserts that no
//!   committed read returns a stale version, even with message loss and
//!   quorum reassignments in flight.
//!
//! The engine's defining property is **degeneracy**: with zero latency,
//! zero loss, and no retries ([`ClusterConfig::ideal`]) it reproduces
//! the instantaneous simulator's per-access decisions exactly — same
//! RNG streams, same failure sample paths, same outcomes. Everything
//! beyond that configuration (timeouts, retries, two-phase writes,
//! joint-safety-restricted installs) is an explicitly documented
//! extension of the paper's model; see DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod config;
pub mod engine;
pub mod message;
pub mod net;
pub mod protocol;
pub mod runner;
pub mod stats;

pub use checker::FreshnessChecker;
pub use config::{jointly_safe, ClusterConfig, InstallStep};
pub use engine::ClusterEngine;
pub use message::{Message, Payload, SessionId, Version, NO_SESSION};
pub use net::{LatencyDist, NetConfig};
pub use protocol::{ProtocolCore, Scheduler, SessionPhase, SessionView, SiteView, TimerToken};
pub use runner::{run_cluster, run_cluster_observed, ClusterRunResults, RunOptions};
pub use stats::{ClusterStats, LatencyHistogram, Outcome};
