//! Multi-batch cluster runs with batch-means confidence intervals,
//! mirroring the §5.2 methodology of [`quorum_replica::runner`].

use crate::config::ClusterConfig;
use crate::engine::ClusterEngine;
use crate::stats::ClusterStats;
use quorum_core::{QuorumSpec, VoteAssignment};
use quorum_graph::Topology;
use quorum_obs::{keys, CiPoint, Registry, RunManifest};
use quorum_replica::Workload;
use quorum_stats::BatchMeans;
use quorum_stats::ConfidenceInterval;

/// Aggregated result of a converged multi-batch cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRunResults {
    /// Batches executed.
    pub batches: u64,
    /// Batch-means accumulator over per-batch ACC.
    pub acc: BatchMeans,
    /// Merged raw statistics over all batches.
    pub combined: ClusterStats,
    /// CI-convergence trace (one point per round).
    pub ci_trace: Vec<CiPoint>,
}

impl ClusterRunResults {
    /// Point estimate of ACC.
    pub fn availability(&self) -> f64 {
        self.acc.mean()
    }

    /// Confidence interval over batch means (`None` below 2 batches).
    pub fn interval(&self) -> Option<ConfidenceInterval> {
        self.acc.interval()
    }

    /// True iff no committed read was stale in any batch.
    pub fn is_fresh(&self) -> bool {
        self.combined.freshness_violations == 0
    }

    /// Copies counters, ACC metrics, and both latency histograms into a
    /// manifest (counters also land in `registry`-sourced snapshots when
    /// the caller absorbs one; this method writes directly).
    pub fn fill_manifest(&self, manifest: &mut RunManifest) {
        manifest.batches = self.batches;
        manifest.ci_trace = self.ci_trace.clone();
        manifest.set_metric("cluster.availability", self.availability());
        manifest.set_metric(
            "cluster.read_availability",
            self.combined.read_availability(),
        );
        manifest.set_metric(
            "cluster.write_availability",
            self.combined.write_availability(),
        );
        manifest.set_metric("cluster.goodput", self.combined.goodput());
        manifest.set_metric(
            "cluster.read_latency_mean",
            self.combined.read_latency.mean(),
        );
        manifest.set_metric(
            "cluster.write_latency_mean",
            self.combined.write_latency.mean(),
        );
        if let Some(ci) = self.interval() {
            manifest.set_metric("cluster.ci_half_width", ci.half_width);
        }
        manifest
            .histograms
            .push(self.combined.read_latency.to_record("cluster.read_latency"));
        manifest.histograms.push(
            self.combined
                .write_latency
                .to_record("cluster.write_latency"),
        );
        for (key, value) in [
            (keys::CLUSTER_MESSAGES_SENT, self.combined.messages_sent),
            (
                keys::CLUSTER_MESSAGES_DELIVERED,
                self.combined.messages_delivered,
            ),
            (
                keys::CLUSTER_MESSAGES_DROPPED,
                self.combined.messages_dropped,
            ),
            (keys::CLUSTER_SESSIONS, self.combined.sessions_opened),
            (keys::CLUSTER_RETRIES, self.combined.retries),
            (keys::CLUSTER_COMMITTED, self.combined.committed()),
            (
                keys::CLUSTER_TIMED_OUT,
                self.combined.reads_timed_out + self.combined.writes_timed_out,
            ),
            (
                keys::CLUSTER_UNAVAILABLE,
                self.combined.reads_unavailable + self.combined.writes_unavailable,
            ),
            (
                keys::CLUSTER_TIMERS_CANCELLED,
                self.combined.timers_cancelled,
            ),
        ] {
            *manifest.counters.entry(key.to_string()).or_insert(0) += value;
        }
    }
}

/// Runs cluster batches until the ACC confidence interval converges
/// (between `min_batches` and `max_batches` from the config's params),
/// publishing counters into `registry`.
pub fn run_cluster_observed(
    topology: &Topology,
    config: &ClusterConfig,
    spec: QuorumSpec,
    votes: VoteAssignment,
    workload: Workload,
    seed: u64,
    registry: &Registry,
) -> ClusterRunResults {
    let _timer = registry.scoped_timer("cluster.run");
    let params = config.params;
    let mut engine =
        ClusterEngine::with_votes(topology, config.clone(), spec, votes, workload, seed);
    let mut acc = BatchMeans::new(params.confidence, params.ci_half_width, params.min_batches);
    let mut combined = ClusterStats::new(&config.latency_bounds);
    let mut ci_trace = Vec::new();

    for index in 0..params.max_batches {
        let stats = engine.run_indexed_batch(index);
        acc.push_batch(stats.availability());
        combined.merge(&stats);
        if let Some(ci) = acc.interval() {
            ci_trace.push(CiPoint {
                batches: acc.batches(),
                mean: acc.mean(),
                half_width: ci.half_width,
            });
        }
        if acc.is_converged() {
            break;
        }
    }

    registry.add(keys::RUN_BATCHES, acc.batches());
    combined.observe_into(registry);
    ClusterRunResults {
        batches: acc.batches(),
        acc,
        combined,
        ci_trace,
    }
}

/// [`run_cluster_observed`] without a registry.
pub fn run_cluster(
    topology: &Topology,
    config: &ClusterConfig,
    spec: QuorumSpec,
    votes: VoteAssignment,
    workload: Workload,
    seed: u64,
) -> ClusterRunResults {
    run_cluster_observed(
        topology,
        config,
        spec,
        votes,
        workload,
        seed,
        &Registry::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_des::SimParams;

    fn tiny(seed: u64) -> (ClusterConfig, u64) {
        let params = SimParams {
            warmup_accesses: 200,
            batch_accesses: 2_000,
            min_batches: 3,
            max_batches: 5,
            ci_half_width: 0.05,
            ..SimParams::paper()
        };
        (ClusterConfig::ideal(params), seed)
    }

    #[test]
    fn converged_run_reports_interval_and_manifest() {
        let topo = Topology::ring(9);
        let (cfg, seed) = tiny(4);
        let registry = Registry::new();
        let res = run_cluster_observed(
            &topo,
            &cfg,
            QuorumSpec::majority(9),
            VoteAssignment::uniform(9),
            Workload::uniform(9, 0.5),
            seed,
            &registry,
        );
        assert!(res.batches >= 3);
        assert!(res.interval().is_some());
        assert!(res.availability() > 0.0 && res.availability() < 1.0);
        assert!(res.is_fresh());

        let mut manifest = RunManifest::new("cluster_sim", seed);
        res.fill_manifest(&mut manifest);
        manifest.absorb_snapshot(&registry.snapshot());
        assert_eq!(manifest.histograms.len(), 2);
        assert!(manifest.metrics.contains_key("cluster.availability"));
        assert_eq!(
            manifest.counter(keys::CLUSTER_SESSIONS),
            2 * res.combined.sessions_opened,
            "fill_manifest + snapshot absorption both contribute"
        );
        // Round-trips through JSON with the histograms intact.
        let back = RunManifest::parse(&manifest.to_json().to_string_pretty()).unwrap();
        assert_eq!(back.histograms, manifest.histograms);
    }

    #[test]
    fn runner_is_deterministic() {
        let topo = Topology::ring(9);
        let (cfg, _) = tiny(0);
        let run = |seed| {
            let r = run_cluster(
                &topo,
                &cfg,
                QuorumSpec::majority(9),
                VoteAssignment::uniform(9),
                Workload::uniform(9, 0.5),
                seed,
            );
            (r.batches, r.combined.committed(), r.combined.messages_sent)
        };
        assert_eq!(run(8), run(8));
    }
}
