//! Multi-batch cluster runs with batch-means confidence intervals,
//! mirroring the §5.2 methodology of [`quorum_replica::runner`].
//!
//! Batches run on the shared [`quorum_stats::converge`] orchestrator:
//! every batch constructs a **fresh** [`ClusterEngine`] and derives its
//! RNG streams from `(seed, batch index)` alone, so batches can fan out
//! over worker threads and merge back in index order — thread count
//! never changes any reported number (see
//! `sequential_and_parallel_agree_exactly`).

use crate::config::ClusterConfig;
use crate::engine::ClusterEngine;
use crate::stats::ClusterStats;
use quorum_core::{QuorumSpec, VoteAssignment};
use quorum_graph::Topology;
use quorum_obs::{keys, CiPoint, Registry, RunManifest};
use quorum_replica::Workload;
use quorum_stats::converge;
use quorum_stats::BatchMeans;
use quorum_stats::ConfidenceInterval;

/// Execution options of a multi-batch cluster run (the simulation
/// parameters live in [`ClusterConfig::params`]).
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Master seed; batch `i` derives its streams from `(seed, i)`.
    pub seed: u64,
    /// Worker threads (1 = sequential). Batches beyond `min_batches`
    /// are added in rounds of `threads` until the CI converges.
    pub threads: usize,
}

impl RunOptions {
    /// Sequential run with the given seed.
    pub fn sequential(seed: u64) -> Self {
        Self { seed, threads: 1 }
    }

    /// Parallel run with the given seed and worker count.
    pub fn threaded(seed: u64, threads: usize) -> Self {
        Self { seed, threads }
    }
}

/// Aggregated result of a converged multi-batch cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRunResults {
    /// Batches executed.
    pub batches: u64,
    /// Batch-means accumulator over per-batch ACC.
    pub acc: BatchMeans,
    /// Merged raw statistics over all batches.
    pub combined: ClusterStats,
    /// CI-convergence trace (one point per counted batch from the
    /// second on — same granularity as the replica runner's, since both
    /// come from [`quorum_stats::converge`]).
    pub ci_trace: Vec<CiPoint>,
}

impl ClusterRunResults {
    /// Point estimate of ACC.
    pub fn availability(&self) -> f64 {
        self.acc.mean()
    }

    /// Confidence interval over batch means (`None` below 2 batches).
    pub fn interval(&self) -> Option<ConfidenceInterval> {
        self.acc.interval()
    }

    /// True iff no committed read was stale in any batch.
    pub fn is_fresh(&self) -> bool {
        self.combined.freshness_violations == 0
    }

    /// Copies batch count, CI trace, ACC metrics, and both latency
    /// histograms into a manifest.
    ///
    /// Counters are deliberately **not** written here: the registry
    /// snapshot is their single owner ([`run_cluster_observed`]
    /// publishes them via [`ClusterStats::observe_into`], and
    /// [`RunManifest::absorb_snapshot`] copies them into the manifest).
    /// Writing them from both paths double-counted every `cluster.*`
    /// counter in emitted manifests.
    pub fn fill_manifest(&self, manifest: &mut RunManifest) {
        manifest.batches = self.batches;
        manifest.ci_trace = self.ci_trace.clone();
        manifest.set_metric(keys::CLUSTER_AVAILABILITY, self.availability());
        manifest.set_metric(
            keys::CLUSTER_READ_AVAILABILITY,
            self.combined.read_availability(),
        );
        manifest.set_metric(
            keys::CLUSTER_WRITE_AVAILABILITY,
            self.combined.write_availability(),
        );
        manifest.set_metric(keys::CLUSTER_GOODPUT, self.combined.goodput());
        manifest.set_metric(
            keys::CLUSTER_READ_LATENCY_MEAN,
            self.combined.read_latency.mean(),
        );
        manifest.set_metric(
            keys::CLUSTER_WRITE_LATENCY_MEAN,
            self.combined.write_latency.mean(),
        );
        if let Some(ci) = self.interval() {
            manifest.set_metric(keys::CLUSTER_CI_HALF_WIDTH, ci.half_width);
        }
        manifest.histograms.push(
            self.combined
                .read_latency
                .to_record(keys::CLUSTER_READ_LATENCY),
        );
        manifest.histograms.push(
            self.combined
                .write_latency
                .to_record(keys::CLUSTER_WRITE_LATENCY),
        );
    }
}

/// Runs cluster batches until the ACC confidence interval converges
/// (between `min_batches` and `max_batches` from the config's params),
/// publishing counters into `registry`.
///
/// Each batch runs a fresh [`ClusterEngine`] on `opts.threads` worker
/// threads; results are merged deterministically by batch index.
pub fn run_cluster_observed(
    topology: &Topology,
    config: &ClusterConfig,
    spec: QuorumSpec,
    votes: VoteAssignment,
    workload: Workload,
    opts: RunOptions,
    registry: &Registry,
) -> ClusterRunResults {
    let _timer = registry.scoped_timer(keys::CLUSTER_RUN);
    let mut combined = ClusterStats::new(&config.latency_bounds);

    let conv = converge(
        &config.params.converge_params(opts.threads),
        |index| {
            let mut engine = ClusterEngine::with_votes(
                topology,
                config.clone(),
                spec,
                votes.clone(),
                workload.clone(),
                opts.seed,
            );
            engine.run_indexed_batch(index)
        },
        ClusterStats::availability,
        |_, stats, elapsed| {
            combined.merge(&stats);
            registry.record_duration(keys::CLUSTER_BATCH, elapsed);
        },
    );

    registry.add(keys::RUN_BATCHES, conv.batches);
    registry.set_gauge(keys::RUN_THREADS, opts.threads.max(1) as f64);
    registry.set_gauge(keys::CLUSTER_THREAD_UTILIZATION, conv.utilization());
    combined.observe_into(registry);
    ClusterRunResults {
        batches: conv.batches,
        acc: conv.acc,
        combined,
        ci_trace: quorum_des::ci_points(&conv.trace),
    }
}

/// [`run_cluster_observed`] without a registry, sequential.
pub fn run_cluster(
    topology: &Topology,
    config: &ClusterConfig,
    spec: QuorumSpec,
    votes: VoteAssignment,
    workload: Workload,
    seed: u64,
) -> ClusterRunResults {
    run_cluster_observed(
        topology,
        config,
        spec,
        votes,
        workload,
        RunOptions::sequential(seed),
        &Registry::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_des::SimParams;

    fn tiny(seed: u64) -> (ClusterConfig, u64) {
        let params = SimParams {
            warmup_accesses: 200,
            batch_accesses: 2_000,
            min_batches: 3,
            max_batches: 5,
            ci_half_width: 0.05,
            ..SimParams::paper()
        };
        (ClusterConfig::ideal(params), seed)
    }

    #[test]
    fn converged_run_reports_interval_and_manifest() {
        let topo = Topology::ring(9);
        let (cfg, seed) = tiny(4);
        let registry = Registry::new();
        let res = run_cluster_observed(
            &topo,
            &cfg,
            QuorumSpec::majority(9),
            VoteAssignment::uniform(9),
            Workload::uniform(9, 0.5),
            RunOptions::sequential(seed),
            &registry,
        );
        assert!(res.batches >= 3);
        assert!(res.interval().is_some());
        assert!(res.availability() > 0.0 && res.availability() < 1.0);
        assert!(res.is_fresh());

        let mut manifest = RunManifest::new("cluster_sim", seed);
        res.fill_manifest(&mut manifest);
        manifest.absorb_snapshot(&registry.snapshot());
        assert_eq!(manifest.histograms.len(), 2);
        assert!(manifest.metrics.contains_key(keys::CLUSTER_AVAILABILITY));
        // The registry snapshot is the single owner of counters, so the
        // manifest carries every total exactly once.
        assert_eq!(
            manifest.counter(keys::CLUSTER_SESSIONS),
            res.combined.sessions_opened
        );
        assert_eq!(
            manifest.counter(keys::CLUSTER_COMMITTED),
            res.combined.committed()
        );
        assert_eq!(
            manifest.counter(keys::CLUSTER_MESSAGES_SENT),
            res.combined.messages_sent
        );
        assert_eq!(
            manifest.counter(keys::CLUSTER_READS_SUBMITTED)
                + manifest.counter(keys::CLUSTER_WRITES_SUBMITTED),
            res.combined.submitted()
        );
        // Round-trips through JSON with the histograms intact.
        let back = RunManifest::parse(&manifest.to_json().to_string_pretty()).unwrap();
        assert_eq!(back.histograms, manifest.histograms);
    }

    #[test]
    fn runner_is_deterministic() {
        let topo = Topology::ring(9);
        let (cfg, _) = tiny(0);
        let run = |seed| {
            let r = run_cluster(
                &topo,
                &cfg,
                QuorumSpec::majority(9),
                VoteAssignment::uniform(9),
                Workload::uniform(9, 0.5),
                seed,
            );
            (r.batches, r.combined.committed(), r.combined.messages_sent)
        };
        assert_eq!(run(8), run(8));
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        // Pin the batch count so the convergence loop cannot add batches
        // in different-sized rounds; per-batch results depend only on
        // (seed, batch index) and merge in index order, so every number
        // must then match bit-for-bit across thread counts.
        let topo = Topology::ring(9);
        let (mut cfg, seed) = tiny(6);
        cfg.params.max_batches = 4;
        cfg.params.min_batches = 4;
        let run = |threads| {
            run_cluster_observed(
                &topo,
                &cfg,
                QuorumSpec::majority(9),
                VoteAssignment::uniform(9),
                Workload::uniform(9, 0.5),
                RunOptions::threaded(seed, threads),
                &Registry::new(),
            )
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.batches, par.batches);
        assert_eq!(seq.availability(), par.availability());
        assert_eq!(seq.combined.committed(), par.combined.committed());
        assert_eq!(seq.combined.messages_sent, par.combined.messages_sent);
        assert_eq!(seq.combined.events_processed, par.combined.events_processed);
        assert_eq!(seq.ci_trace, par.ci_trace);
    }

    #[test]
    fn fresh_engine_batch_matches_reused_engine() {
        // The parallel runner builds a new engine per batch; pin that a
        // fresh engine's indexed batch is bit-identical to re-running
        // the same index on a long-lived engine.
        let topo = Topology::ring(9);
        let (cfg, seed) = tiny(12);
        let spec = QuorumSpec::majority(9);
        let votes = VoteAssignment::uniform(9);
        let wl = Workload::uniform(9, 0.5);
        let mut reused =
            ClusterEngine::with_votes(&topo, cfg.clone(), spec, votes.clone(), wl.clone(), seed);
        for index in [0u64, 1, 3] {
            let a = reused.run_indexed_batch(index);
            let mut fresh = ClusterEngine::with_votes(
                &topo,
                cfg.clone(),
                spec,
                votes.clone(),
                wl.clone(),
                seed,
            );
            let b = fresh.run_indexed_batch(index);
            assert_eq!(a, b, "batch {index}");
        }
    }

    #[test]
    fn ci_trace_has_shared_orchestrator_granularity() {
        // One point per counted batch from the second on, regardless of
        // thread count — the trace comes from quorum_stats::converge.
        let topo = Topology::ring(9);
        let (mut cfg, seed) = tiny(3);
        cfg.params.min_batches = 5;
        cfg.params.max_batches = 5;
        cfg.params.ci_half_width = 1e-9; // unreachable: run every batch
        let res = run_cluster_observed(
            &topo,
            &cfg,
            QuorumSpec::majority(9),
            VoteAssignment::uniform(9),
            Workload::uniform(9, 0.5),
            RunOptions::threaded(seed, 2),
            &Registry::new(),
        );
        assert_eq!(res.batches, 5);
        let batches: Vec<u64> = res.ci_trace.iter().map(|p| p.batches).collect();
        assert_eq!(batches, vec![2, 3, 4, 5]);
    }
}
