//! Cluster engine configuration: timeouts, retries, network model, and
//! the scripted §2.2 reassignment schedule.

use crate::net::NetConfig;
use quorum_core::QuorumSpec;
use quorum_des::SimParams;

/// One scripted quorum reassignment: at simulation time `at`, site
/// `origin` (if up) installs `spec` locally and broadcasts
/// [`crate::message::Payload::Install`] to every other site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstallStep {
    /// Simulation time of the installation.
    pub at: f64,
    /// Site initiating the install.
    pub origin: usize,
    /// The new quorum spec.
    pub spec: QuorumSpec,
}

/// Are two specs *jointly safe*: does every read quorum of one intersect
/// every write quorum of the other (both directions)?
///
/// The paper's §2.2 QR protocol makes an install safe by gathering
/// `max(q_w_old, q_w_new)` votes and refreshing the value. In a message
/// world that refresh can itself be lost mid-flight, so this engine
/// instead restricts scripted installs to pairwise jointly-safe specs:
/// then *any* mix of sites running old and new assignments still
/// guarantees read/write intersection, and no lock or refresh is needed.
/// This is a deliberate extension/simplification relative to the paper.
pub fn jointly_safe(a: QuorumSpec, b: QuorumSpec) -> bool {
    a.total() == b.total() && a.q_r() + b.q_w() > a.total() && b.q_r() + a.q_w() > a.total()
}

/// Full configuration of one cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Scale and failure parameters (shared with the instantaneous
    /// simulator — same batch sizes, same reliability model).
    pub params: SimParams,
    /// Latency/loss model of every link.
    pub net: NetConfig,
    /// Base per-round session timeout (simulated time units; the access
    /// inter-arrival mean is 1.0).
    pub session_timeout: f64,
    /// Retry rounds after the first timeout (0 = fail on first timeout).
    pub max_retries: u32,
    /// Exponential backoff multiplier: round `r` waits
    /// `session_timeout · backoff^r`, capped by `max_backoff_factor`.
    pub retry_backoff: f64,
    /// Cap on the backoff multiplier.
    pub max_backoff_factor: f64,
    /// Scripted reassignments (validated pairwise jointly safe).
    pub installs: Vec<InstallStep>,
    /// UNSAFE ablation: declare writes committed as soon as phase-1
    /// grants reach `q_w`, without waiting for commit acks. Exists so
    /// tests can demonstrate that the freshness checker catches the
    /// resulting stale reads under message loss.
    pub commit_on_grant: bool,
    /// UNSAFE ablation: let pledges gathered under one assignment epoch
    /// keep counting after a retry adopts a different epoch, and accept
    /// late pledges tagged with a mismatched epoch — the pre-fix
    /// behavior of `session_timeout`/`vote_received`. Exists so the
    /// `quorum-mc` model checker can demonstrate that it *finds* the
    /// cross-epoch mixing bug (negative control, in the style of
    /// [`ClusterConfig::commit_on_grant`]).
    pub mix_epoch_votes: bool,
    /// Record the per-access outcome sequence (used by the degeneracy
    /// test to compare against the instantaneous simulator).
    pub record_outcomes: bool,
    /// Upper bucket edges of the session-latency histograms.
    pub latency_bounds: Vec<f64>,
    /// Maintain components incrementally ([`quorum_graph::DeltaConnectivity`])
    /// instead of re-running a full BFS after every topology event. Both
    /// kernels produce bit-identical component views; this flag exists so
    /// tests and benchmarks can pin that equivalence.
    pub delta_kernel: bool,
}

impl ClusterConfig {
    /// Default latency histogram bucket edges (simulated time units).
    pub fn default_latency_bounds() -> Vec<f64> {
        vec![0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0]
    }

    /// A realistic-network starting point: small constant latency, no
    /// loss, three retries with doubling backoff.
    pub fn new(params: SimParams) -> Self {
        Self {
            params,
            net: NetConfig {
                latency: crate::net::LatencyDist::Constant(0.01),
                loss: 0.0,
            },
            session_timeout: 0.25,
            max_retries: 3,
            retry_backoff: 2.0,
            max_backoff_factor: 8.0,
            installs: Vec::new(),
            commit_on_grant: false,
            mix_epoch_votes: false,
            record_outcomes: false,
            latency_bounds: Self::default_latency_bounds(),
            delta_kernel: true,
        }
    }

    /// The degenerate configuration: ideal network, no retries. Decisions
    /// then match the instantaneous simulator access-for-access.
    pub fn ideal(params: SimParams) -> Self {
        Self {
            net: NetConfig::ideal(),
            max_retries: 0,
            ..Self::new(params)
        }
    }

    /// The timeout of retry round `round` (0 = first attempt).
    pub fn timeout_for(&self, round: u32) -> f64 {
        let factor = self
            .retry_backoff
            .powi(round.min(64) as i32)
            .min(self.max_backoff_factor);
        self.session_timeout * factor
    }

    /// Validates the configuration against the initial spec and the
    /// number of sites: network parameters, timeout positivity, install
    /// origins in range, and pairwise joint safety across the initial
    /// spec and every scripted spec (see [`jointly_safe`]).
    ///
    /// # Panics
    /// Panics on any violated constraint.
    pub fn validate(&self, initial: QuorumSpec, num_sites: usize) {
        self.params.validate();
        self.net.validate();
        assert!(
            self.session_timeout > 0.0,
            "session timeout must be positive"
        );
        assert!(
            self.retry_backoff >= 1.0,
            "backoff must not shrink timeouts"
        );
        assert!(self.max_backoff_factor >= 1.0, "backoff cap must be >= 1");
        assert!(
            self.latency_bounds.windows(2).all(|w| w[0] < w[1]),
            "latency bounds must be strictly increasing"
        );
        let mut specs = vec![initial];
        for step in &self.installs {
            assert!(step.origin < num_sites, "install origin out of range");
            assert!(step.at >= 0.0, "install time must be non-negative");
            specs.push(step.spec);
        }
        for (i, &a) in specs.iter().enumerate() {
            for &b in &specs[i + 1..] {
                assert!(
                    jointly_safe(a, b),
                    "specs {a} and {b} are not jointly safe: a mixed-epoch \
                     cluster could lose read/write intersection"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_safety_examples() {
        let t = 10;
        let majority = QuorumSpec::majority(t); // (5, 6)
        let tilted = QuorumSpec::new(4, 7, t).unwrap();
        // 5+7 > 10 and 4+6 <= 10: NOT jointly safe.
        assert!(!jointly_safe(majority, tilted));
        let safe = QuorumSpec::new(5, 7, t).unwrap();
        assert!(jointly_safe(majority, safe));
        // A spec is always jointly safe with itself (conditions 1+2).
        assert!(jointly_safe(majority, majority));
        // Different totals never mix.
        assert!(!jointly_safe(majority, QuorumSpec::majority(11)));
    }

    #[test]
    fn backoff_grows_then_caps() {
        let mut c = ClusterConfig::new(SimParams::quick());
        c.session_timeout = 1.0;
        c.retry_backoff = 2.0;
        c.max_backoff_factor = 4.0;
        assert_eq!(c.timeout_for(0), 1.0);
        assert_eq!(c.timeout_for(1), 2.0);
        assert_eq!(c.timeout_for(2), 4.0);
        assert_eq!(c.timeout_for(3), 4.0, "capped");
        assert_eq!(c.timeout_for(60), 4.0, "still capped far out");
    }

    #[test]
    #[should_panic(expected = "not jointly safe")]
    fn unsafe_install_script_rejected() {
        let mut c = ClusterConfig::ideal(SimParams::quick());
        c.installs.push(InstallStep {
            at: 10.0,
            origin: 0,
            spec: QuorumSpec::new(4, 7, 10).unwrap(),
        });
        c.validate(QuorumSpec::majority(10), 10);
    }

    #[test]
    fn safe_install_script_accepted() {
        let mut c = ClusterConfig::ideal(SimParams::quick());
        c.installs.push(InstallStep {
            at: 10.0,
            origin: 0,
            spec: QuorumSpec::new(5, 7, 10).unwrap(),
        });
        c.validate(QuorumSpec::majority(10), 10);
    }
}
