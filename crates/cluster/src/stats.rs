//! Per-batch accounting of the cluster engine: outcomes, message and
//! retry counters, session-latency histograms, and goodput.

use quorum_core::Access;
use quorum_obs::{keys, HistogramRecord, Registry};

/// Client-visible resolution of one quorum session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The quorum was gathered (and, for writes, the commit was
    /// acknowledged by a write quorum).
    Committed,
    /// Every retry round timed out before a quorum was gathered.
    TimedOut,
    /// The submitting site was down at dispatch; no session was opened.
    Unavailable,
}

/// A fixed-bucket latency histogram (bounds are upper edges; one extra
/// overflow bucket). Mirrors [`quorum_obs::HistogramRecord`] semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
}

impl LatencyHistogram {
    /// Creates a histogram with the given ascending bucket upper edges.
    pub fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
        }
    }

    /// Records one latency observation.
    ///
    /// Latencies are differences of simulation timestamps, so a NaN or
    /// infinity here means an upstream arithmetic bug — it would poison
    /// `sum` (and every mean derived from it) silently.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite latency recorded: {x}");
        let idx = self
            .bounds
            .iter()
            .position(|&b| x < b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += x;
    }

    /// Total observations.
    pub fn observations(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean latency (0 with no observations).
    pub fn mean(&self) -> f64 {
        let n = self.observations();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Converts to a manifest record under `name`.
    pub fn to_record(&self, name: &str) -> HistogramRecord {
        HistogramRecord {
            name: name.to_string(),
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
        }
    }

    /// Accumulates another histogram (bounds must match).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
    }
}

/// Everything one cluster batch measures.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Measured read sessions submitted.
    pub reads_submitted: u64,
    /// Measured write sessions submitted.
    pub writes_submitted: u64,
    /// Measured reads committed.
    pub reads_committed: u64,
    /// Measured writes committed.
    pub writes_committed: u64,
    /// Measured reads that exhausted their retries.
    pub reads_timed_out: u64,
    /// Measured writes that exhausted their retries.
    pub writes_timed_out: u64,
    /// Measured reads whose origin was down at dispatch.
    pub reads_unavailable: u64,
    /// Measured writes whose origin was down at dispatch.
    pub writes_unavailable: u64,
    /// Messages sent (all sessions, warm-up included, retries included).
    pub messages_sent: u64,
    /// Messages delivered to their destination.
    pub messages_delivered: u64,
    /// Messages lost (Bernoulli loss or partitioned at delivery).
    pub messages_dropped: u64,
    /// Retry rounds dispatched after a timeout.
    pub retries: u64,
    /// Session timers voided before firing (session resolved first).
    pub timers_cancelled: u64,
    /// Sessions opened (warm-up included).
    pub sessions_opened: u64,
    /// Scripted or piggybacked assignment adoptions applied at sites.
    pub installs_applied: u64,
    /// Retry rounds that adopted a different assignment epoch and
    /// therefore discarded their accumulated pledges (re-seeding the
    /// coordinator's own votes) — the headline cross-epoch-mixing fix.
    pub cross_epoch_resets: u64,
    /// Phase-1 pledges ignored because they were granted under a
    /// different assignment epoch than the session's.
    pub stale_grants_ignored: u64,
    /// Committed reads that returned a version older than the newest
    /// write committed before the read started. Must stay 0 under the
    /// safe two-phase protocol.
    pub freshness_violations: u64,
    /// Site up/down transitions applied.
    pub site_transitions: u64,
    /// Link up/down transitions applied.
    pub link_transitions: u64,
    /// Events popped from the queue.
    pub events_processed: u64,
    /// Topology events the incremental kernel absorbed by merging
    /// components (zero when the kernel is disabled).
    pub delta_merges: u64,
    /// Topology events absorbed by re-scanning one component.
    pub delta_rescans: u64,
    /// Topology events filtered as partition-preserving no-ops.
    pub delta_noops: u64,
    /// Topology events absorbed by a from-scratch kernel rebuild.
    pub full_recomputes: u64,
    /// Latency of committed measured reads (submit → commit).
    pub read_latency: LatencyHistogram,
    /// Latency of committed measured writes (submit → commit).
    pub write_latency: LatencyHistogram,
    /// Simulated time from the first measured dispatch to batch drain.
    pub measured_duration: f64,
    /// Per-access outcome sequence in submission order (only populated
    /// when [`crate::ClusterConfig::record_outcomes`] is set; one slot
    /// per measured access, `None` until the session resolves).
    pub outcomes: Vec<Option<(Access, Outcome)>>,
}

impl ClusterStats {
    /// Creates empty stats with the given latency bucket edges.
    pub fn new(latency_bounds: &[f64]) -> Self {
        Self {
            reads_submitted: 0,
            writes_submitted: 0,
            reads_committed: 0,
            writes_committed: 0,
            reads_timed_out: 0,
            writes_timed_out: 0,
            reads_unavailable: 0,
            writes_unavailable: 0,
            messages_sent: 0,
            messages_delivered: 0,
            messages_dropped: 0,
            retries: 0,
            timers_cancelled: 0,
            sessions_opened: 0,
            installs_applied: 0,
            cross_epoch_resets: 0,
            stale_grants_ignored: 0,
            freshness_violations: 0,
            site_transitions: 0,
            link_transitions: 0,
            events_processed: 0,
            delta_merges: 0,
            delta_rescans: 0,
            delta_noops: 0,
            full_recomputes: 0,
            read_latency: LatencyHistogram::new(latency_bounds),
            write_latency: LatencyHistogram::new(latency_bounds),
            measured_duration: 0.0,
            outcomes: Vec::new(),
        }
    }

    /// Measured sessions submitted.
    pub fn submitted(&self) -> u64 {
        self.reads_submitted + self.writes_submitted
    }

    /// Measured sessions committed.
    pub fn committed(&self) -> u64 {
        self.reads_committed + self.writes_committed
    }

    /// ACC: fraction of measured sessions that committed.
    pub fn availability(&self) -> f64 {
        if self.submitted() == 0 {
            0.0
        } else {
            self.committed() as f64 / self.submitted() as f64
        }
    }

    /// Read-only ACC.
    pub fn read_availability(&self) -> f64 {
        if self.reads_submitted == 0 {
            0.0
        } else {
            self.reads_committed as f64 / self.reads_submitted as f64
        }
    }

    /// Write-only ACC.
    pub fn write_availability(&self) -> f64 {
        if self.writes_submitted == 0 {
            0.0
        } else {
            self.writes_committed as f64 / self.writes_submitted as f64
        }
    }

    /// Committed sessions per unit simulated time over the measured
    /// window (0 if the window is empty).
    pub fn goodput(&self) -> f64 {
        if self.measured_duration <= 0.0 {
            0.0
        } else {
            self.committed() as f64 / self.measured_duration
        }
    }

    /// Accumulates another batch (outcome sequences are not merged —
    /// they are a single-batch debugging/validation artifact).
    pub fn merge(&mut self, other: &Self) {
        self.reads_submitted += other.reads_submitted;
        self.writes_submitted += other.writes_submitted;
        self.reads_committed += other.reads_committed;
        self.writes_committed += other.writes_committed;
        self.reads_timed_out += other.reads_timed_out;
        self.writes_timed_out += other.writes_timed_out;
        self.reads_unavailable += other.reads_unavailable;
        self.writes_unavailable += other.writes_unavailable;
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.messages_dropped += other.messages_dropped;
        self.retries += other.retries;
        self.timers_cancelled += other.timers_cancelled;
        self.sessions_opened += other.sessions_opened;
        self.installs_applied += other.installs_applied;
        self.cross_epoch_resets += other.cross_epoch_resets;
        self.stale_grants_ignored += other.stale_grants_ignored;
        self.freshness_violations += other.freshness_violations;
        self.site_transitions += other.site_transitions;
        self.link_transitions += other.link_transitions;
        self.events_processed += other.events_processed;
        self.delta_merges += other.delta_merges;
        self.delta_rescans += other.delta_rescans;
        self.delta_noops += other.delta_noops;
        self.full_recomputes += other.full_recomputes;
        self.read_latency.merge(&other.read_latency);
        self.write_latency.merge(&other.write_latency);
        self.measured_duration += other.measured_duration;
    }

    /// Publishes the counters into a registry under the
    /// [`quorum_obs::keys`] names.
    pub fn observe_into(&self, registry: &Registry) {
        registry.add(keys::CLUSTER_READS_SUBMITTED, self.reads_submitted);
        registry.add(keys::CLUSTER_WRITES_SUBMITTED, self.writes_submitted);
        registry.add(keys::CLUSTER_MESSAGES_SENT, self.messages_sent);
        registry.add(keys::CLUSTER_MESSAGES_DELIVERED, self.messages_delivered);
        registry.add(keys::CLUSTER_MESSAGES_DROPPED, self.messages_dropped);
        registry.add(keys::CLUSTER_SESSIONS, self.sessions_opened);
        registry.add(keys::CLUSTER_RETRIES, self.retries);
        registry.add(keys::CLUSTER_COMMITTED, self.committed());
        registry.add(
            keys::CLUSTER_TIMED_OUT,
            self.reads_timed_out + self.writes_timed_out,
        );
        registry.add(
            keys::CLUSTER_UNAVAILABLE,
            self.reads_unavailable + self.writes_unavailable,
        );
        registry.add(keys::CLUSTER_TIMERS_CANCELLED, self.timers_cancelled);
        registry.add(keys::CLUSTER_CROSS_EPOCH_RESETS, self.cross_epoch_resets);
        registry.add(
            keys::CLUSTER_STALE_GRANTS_IGNORED,
            self.stale_grants_ignored,
        );
        registry.add(keys::DES_EVENTS, self.events_processed);
        registry.add(keys::DES_SITE_TRANSITIONS, self.site_transitions);
        registry.add(keys::DES_LINK_TRANSITIONS, self.link_transitions);
        registry.add(keys::DELTA_MERGES, self.delta_merges);
        registry.add(keys::DELTA_RESCANS, self.delta_rescans);
        registry.add(keys::DELTA_NOOPS, self.delta_noops);
        registry.add(keys::FULL_RECOMPUTES, self.full_recomputes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = LatencyHistogram::new(&[0.1, 0.5]);
        h.record(0.05);
        h.record(0.2);
        h.record(0.3);
        h.record(9.0);
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.observations(), 4);
        assert!((h.mean() - (0.05 + 0.2 + 0.3 + 9.0) / 4.0).abs() < 1e-12);
        let rec = h.to_record(keys::CLUSTER_READ_LATENCY);
        assert_eq!(rec.observations(), 4);
        assert_eq!(rec.counts.len(), rec.bounds.len() + 1);
    }

    #[test]
    fn merge_adds_everything() {
        let bounds = [0.1];
        let mut a = ClusterStats::new(&bounds);
        let mut b = ClusterStats::new(&bounds);
        a.reads_submitted = 10;
        a.reads_committed = 9;
        b.reads_submitted = 10;
        b.reads_committed = 7;
        b.messages_sent = 55;
        a.merge(&b);
        assert_eq!(a.reads_submitted, 20);
        assert_eq!(a.reads_committed, 16);
        assert_eq!(a.messages_sent, 55);
        assert!((a.availability() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn availability_handles_empty() {
        let s = ClusterStats::new(&[0.1]);
        assert_eq!(s.availability(), 0.0);
        assert_eq!(s.goodput(), 0.0);
    }
}
