//! Articulation points (cut vertices).
//!
//! A site whose failure disconnects its component is structurally critical:
//! partitions form around it, so it is a natural candidate for extra votes
//! (the `vote_opt` experiment confirms hub-weighted assignments beat
//! uniform on stars). Tarjan's linear-time DFS lowpoint algorithm,
//! implemented iteratively (101-site paper topologies are shallow, but
//! user graphs need not be).

use crate::topology::Topology;

/// Returns the articulation points of the (fully-up) topology, sorted.
pub fn articulation_points(topology: &Topology) -> Vec<usize> {
    let n = topology.num_sites();
    let mut disc = vec![usize::MAX; n]; // discovery time
    let mut low = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Iterative DFS: stack of (site, neighbor cursor).
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut root_children = 0usize;

        while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
            if *cursor < topology.neighbors(u).len() {
                let (v, _link) = topology.neighbors(u)[*cursor];
                *cursor += 1;
                if disc[v] == usize::MAX {
                    parent[v] = u;
                    if u == root {
                        root_children += 1;
                    }
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, 0));
                } else if v != parent[u] {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if p != root && low[u] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_cut[root] = true;
        }
    }
    (0..n).filter(|&s| is_cut[s]).collect()
}

/// A structural vote heuristic: `base` votes everywhere, plus `bonus` on
/// each articulation point. Cheap stand-in for the exponential joint
/// vote/quorum search on asymmetric topologies.
pub fn articulation_weighted_votes(topology: &Topology, base: u64, bonus: u64) -> Vec<u64> {
    let cuts = articulation_points(topology);
    let mut votes = vec![base; topology.num_sites()];
    for c in cuts {
        votes[c] += bonus;
    }
    votes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_has_no_articulation_points() {
        assert!(articulation_points(&Topology::ring(9)).is_empty());
    }

    #[test]
    fn star_hub_is_the_only_cut_vertex() {
        assert_eq!(articulation_points(&Topology::star(8)), vec![0]);
    }

    #[test]
    fn path_interior_sites_are_cut_vertices() {
        let cuts = articulation_points(&Topology::path(6));
        assert_eq!(cuts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn complete_graph_has_none() {
        assert!(articulation_points(&Topology::fully_connected(6)).is_empty());
    }

    #[test]
    fn barbell_center_is_cut() {
        // Two triangles joined through site 2: 0-1-2 and 2-3-4... build
        // explicitly: triangle {0,1,2}, triangle {3,4,5}, bridge 2-3.
        let topo = Topology::from_links(
            6,
            vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
            "barbell",
        );
        assert_eq!(articulation_points(&topo), vec![2, 3]);
    }

    #[test]
    fn disconnected_graph_handled() {
        // Two separate paths: interior sites of each are cuts.
        let topo = Topology::from_links(6, vec![(0, 1), (1, 2), (3, 4), (4, 5)], "two-paths");
        assert_eq!(articulation_points(&topo), vec![1, 4]);
    }

    #[test]
    fn brute_force_agreement_on_random_graphs() {
        use rand::SeedableRng;
        for seed in 0..20u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let topo = Topology::gnp(10, 0.3, &mut rng);
            let fast = articulation_points(&topo);
            // Brute force: removing a cut vertex increases the number of
            // components among the remaining sites.
            let mut slow = Vec::new();
            let base = component_count_excluding(&topo, usize::MAX);
            for s in 0..10 {
                // Only sites with ≥1 neighbor can be cut vertices; compare
                // components among OTHER sites before/after removal.
                let before = base - usize::from(topo.degree(s) == 0) - 1;
                // components among others when s present: recount properly
                let others_with_s = component_count_excluding_counting_others(&topo, usize::MAX, s);
                let others_without_s = component_count_excluding_counting_others(&topo, s, s);
                let _ = before;
                if others_without_s > others_with_s {
                    slow.push(s);
                }
            }
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    /// Components of the whole graph, excluding `skip` (usize::MAX = none).
    fn component_count_excluding(topo: &Topology, skip: usize) -> usize {
        component_count_excluding_counting_others(topo, skip, skip)
    }

    /// Number of components among sites ≠ `ignore`, with `skip` removed
    /// from the graph.
    fn component_count_excluding_counting_others(
        topo: &Topology,
        skip: usize,
        ignore: usize,
    ) -> usize {
        let n = topo.num_sites();
        let mut seen = vec![false; n];
        let mut comps = 0;
        for start in 0..n {
            if start == skip || start == ignore || seen[start] {
                continue;
            }
            comps += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(u) = stack.pop() {
                for &(v, _) in topo.neighbors(u) {
                    if v != skip && !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
        }
        comps
    }

    #[test]
    fn weighted_votes_bonus_lands_on_cuts() {
        let votes = articulation_weighted_votes(&Topology::star(5), 1, 2);
        assert_eq!(votes, vec![3, 1, 1, 1, 1]);
    }
}
