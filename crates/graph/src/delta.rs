//! Incremental component maintenance over the up-subgraph.
//!
//! [`ComponentView::compute`] re-runs a whole-graph BFS over edge lists
//! after every topology event. At paper scale (101 sites, chord variants
//! up to 5 050 links) that BFS dominates batch wall-clock. This module
//! maintains the partition *incrementally* instead:
//!
//! * **Recovery merges, never scans.** A site or link coming up can only
//!   join existing components. Joining is a union-find-style
//!   smaller-into-larger relabel over member bitsets — no BFS at all.
//! * **Failure re-scans one component.** A site or link going down can
//!   only split the single component that contained it, so the re-scan
//!   BFS is seeded from that component's member bitset and never touches
//!   the rest of the graph.
//! * **Provable no-ops are filtered.** Toggling a link with a down
//!   endpoint, failing an already-isolated site, or restoring a link
//!   inside one component cannot change the partition; these events cost
//!   O(1).
//!
//! All scans are *word-parallel*: per-site adjacency lives in
//! [`BitSet`]s keyed by live (up) links, so a BFS frontier expands by
//! OR-ing 64 sites at a time rather than walking `(neighbor, link)`
//! pairs. [`DeltaConnectivity::to_view`] renumbers the internal
//! component slots in first-site order, which makes the materialized
//! [`ComponentView`] *bit-identical* to a fresh
//! [`ComponentView::compute`] — the kernel can never change a reported
//! number (pinned by `tests/delta_kernel.rs`).

use crate::bitset::BitSet;
use crate::connectivity::ComponentView;
use crate::state::NetworkState;
use crate::topology::Topology;

/// One site/link up-down transition, as applied by the simulation
/// engines after `NetworkState::set_site`/`set_link` reported a change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyEvent {
    /// Site `site` transitioned to `up`.
    Site {
        /// The site index.
        site: usize,
        /// Its new state.
        up: bool,
    },
    /// Link `link` transitioned to `up`.
    Link {
        /// The link index.
        link: usize,
        /// Its new state.
        up: bool,
    },
}

/// How the kernel disposed of one event (drives the `graph.delta_*`
/// observability counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// Recovery handled by component merging (no BFS).
    Merge,
    /// Failure handled by re-scanning the single affected component.
    Rescan,
    /// Provably partition-preserving; nothing recomputed.
    Noop,
}

/// Lifetime totals of the kernel fast paths. The fourth counter,
/// `full_recomputes`, counts events absorbed by rebuilding the kernel
/// from scratch (an event arriving while no kernel was built).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaCounters {
    /// Events handled by the union-find merge path.
    pub merges: u64,
    /// Events handled by a single-component re-scan.
    pub rescans: u64,
    /// Events filtered as partition-preserving no-ops.
    pub noops: u64,
    /// Events absorbed by a from-scratch kernel rebuild.
    pub full_recomputes: u64,
}

impl DeltaCounters {
    /// Total events classified — every applied event lands in exactly
    /// one bucket, so this must equal the engine's transition count.
    pub fn total(&self) -> u64 {
        self.merges + self.rescans + self.noops + self.full_recomputes
    }
}

/// One maintained component: its member bitset and cached totals.
#[derive(Debug, Clone)]
struct CompSlot {
    members: BitSet,
    votes: u64,
    size: u32,
}

/// Incrementally-maintained partition of the up-subgraph.
///
/// Mirrors the site/link state it was built from; callers must feed it
/// every subsequent state change through [`DeltaConnectivity::apply`]
/// (the engines route this via `ComponentCache::apply_event`).
#[derive(Debug, Clone)]
pub struct DeltaConnectivity {
    n: usize,
    votes: Vec<u64>,
    /// Endpoints per link index (copied so the kernel is self-contained).
    link_ends: Vec<(usize, usize)>,
    /// Mirror of the site up/down bits.
    site_up: BitSet,
    /// `live_adj[s]`: neighbors of `s` joined by an *up* link,
    /// irrespective of site state (site state is applied as a mask).
    live_adj: Vec<BitSet>,
    /// Component slot per site, [`ComponentView::DOWN`] for down sites.
    comp_of: Vec<u32>,
    slots: Vec<CompSlot>,
    free: Vec<u32>,
    // Scratch buffers so steady-state events allocate nothing.
    scratch: BitSet,
    frontier: BitSet,
    next: BitSet,
}

impl DeltaConnectivity {
    /// Builds the kernel from the current state with a word-parallel BFS.
    ///
    /// # Panics
    /// Panics if `votes.len()` differs from the site count.
    pub fn new(topology: &Topology, state: &NetworkState, votes: &[u64]) -> Self {
        let n = topology.num_sites();
        assert_eq!(votes.len(), n, "one vote weight per site");
        let mut live_adj = vec![BitSet::new(n); n];
        let mut link_ends = Vec::with_capacity(topology.num_links());
        for (l, &(a, b)) in topology.links().iter().enumerate() {
            link_ends.push((a, b));
            if state.link_up(l) {
                live_adj[a].set(b, true);
                live_adj[b].set(a, true);
            }
        }
        let site_up = state.site_bits().clone();
        let mut kernel = Self {
            n,
            votes: votes.to_vec(),
            link_ends,
            site_up: site_up.clone(),
            live_adj,
            comp_of: vec![ComponentView::DOWN; n],
            slots: Vec::new(),
            free: Vec::new(),
            scratch: BitSet::new(n),
            frontier: BitSet::new(n),
            next: BitSet::new(n),
        };
        kernel.carve_components(site_up);
        kernel
    }

    /// Applies one state transition and reports which fast path handled
    /// it. The event must describe an actual change (the engines guard
    /// with `NetworkState::set_site`/`set_link` returning `true`).
    pub fn apply(&mut self, event: TopologyEvent) -> DeltaOutcome {
        match event {
            TopologyEvent::Site { site, up: true } => self.site_recovered(site),
            TopologyEvent::Site { site, up: false } => self.site_failed(site),
            TopologyEvent::Link { link, up: true } => self.link_recovered(link),
            TopologyEvent::Link { link, up: false } => self.link_failed(link),
        }
    }

    /// Materializes the canonical [`ComponentView`]: internal slots are
    /// renumbered in order of their lowest site index, which is exactly
    /// the id order [`ComponentView::compute`] assigns.
    pub fn to_view(&self) -> ComponentView {
        let mut remap = vec![u32::MAX; self.slots.len()];
        let mut comp_id = vec![ComponentView::DOWN; self.n];
        let mut comp_votes = Vec::new();
        let mut comp_sizes = Vec::new();
        let mut members = Vec::new();
        for (site, id) in comp_id.iter_mut().enumerate() {
            let slot = self.comp_of[site];
            if slot == ComponentView::DOWN {
                continue;
            }
            let s = slot as usize;
            if remap[s] == u32::MAX {
                remap[s] = comp_votes.len() as u32;
                comp_votes.push(self.slots[s].votes);
                comp_sizes.push(self.slots[s].size);
                members.push(self.slots[s].members.clone());
            }
            *id = remap[s];
        }
        ComponentView::from_parts(comp_id, comp_votes, comp_sizes, members)
    }

    /// True if the mirrored site bits match `state` (cheap sync check
    /// for debug assertions — a mismatch means a missed event).
    pub fn in_sync_with(&self, state: &NetworkState) -> bool {
        &self.site_up == state.site_bits()
    }

    fn site_recovered(&mut self, site: usize) -> DeltaOutcome {
        debug_assert!(!self.site_up.get(site), "recovery of an up site");
        self.site_up.set(site, true);
        let slot = self.alloc_slot();
        let s = slot as usize;
        self.slots[s].members.set(site, true);
        self.slots[s].votes = self.votes[site];
        self.slots[s].size = 1;
        self.comp_of[site] = slot;
        // Union with every component reachable over a live link to an up
        // neighbor. Re-read `comp_of[site]` each step: merging relabels
        // the smaller side, which may be ours.
        let mut reach = std::mem::take(&mut self.scratch);
        reach.copy_from(&self.live_adj[site]);
        reach.and_assign(&self.site_up);
        for nb in reach.iter_ones() {
            let mine = self.comp_of[site];
            let other = self.comp_of[nb];
            if other != mine {
                self.merge_slots(mine, other);
            }
        }
        self.scratch = reach;
        DeltaOutcome::Merge
    }

    fn site_failed(&mut self, site: usize) -> DeltaOutcome {
        debug_assert!(self.site_up.get(site), "failure of a down site");
        self.site_up.set(site, false);
        let slot = self.comp_of[site];
        let s = slot as usize;
        self.comp_of[site] = ComponentView::DOWN;
        self.slots[s].members.set(site, false);
        self.slots[s].votes -= self.votes[site];
        self.slots[s].size -= 1;
        if self.slots[s].size == 0 {
            // Already-isolated site: removing it deletes a singleton and
            // provably cannot re-partition anything else.
            self.free_slot(slot);
            return DeltaOutcome::Noop;
        }
        // The remaining members may have split; re-scan only them.
        let remaining = std::mem::take(&mut self.slots[s].members);
        self.free_slot(slot);
        self.carve_components(remaining);
        DeltaOutcome::Rescan
    }

    fn link_recovered(&mut self, link: usize) -> DeltaOutcome {
        let (a, b) = self.link_ends[link];
        self.live_adj[a].set(b, true);
        self.live_adj[b].set(a, true);
        if !self.site_up.get(a) || !self.site_up.get(b) {
            // A down endpoint keeps the link out of the up-subgraph.
            return DeltaOutcome::Noop;
        }
        let (ca, cb) = (self.comp_of[a], self.comp_of[b]);
        if ca == cb {
            // Intra-component edge: the partition is unchanged.
            return DeltaOutcome::Noop;
        }
        self.merge_slots(ca, cb);
        DeltaOutcome::Merge
    }

    fn link_failed(&mut self, link: usize) -> DeltaOutcome {
        let (a, b) = self.link_ends[link];
        self.live_adj[a].set(b, false);
        self.live_adj[b].set(a, false);
        if !self.site_up.get(a) || !self.site_up.get(b) {
            // The link was not part of the up-subgraph to begin with.
            return DeltaOutcome::Noop;
        }
        // Both endpoints up ⇒ same component; only it can split (into at
        // most two parts — but carve handles the general case anyway).
        let slot = self.comp_of[a];
        debug_assert_eq!(slot, self.comp_of[b], "up endpoints must share a slot");
        let remaining = std::mem::take(&mut self.slots[slot as usize].members);
        self.free_slot(slot);
        self.carve_components(remaining);
        DeltaOutcome::Rescan
    }

    /// Partitions the sites in `pool` into components via word-parallel
    /// BFS, allocating one slot per component found. `pool` must contain
    /// only up sites; it is consumed.
    fn carve_components(&mut self, mut pool: BitSet) {
        let mut frontier = std::mem::take(&mut self.frontier);
        let mut next = std::mem::take(&mut self.next);
        while let Some(seed) = pool.first_one() {
            let slot = self.alloc_slot();
            let s = slot as usize;
            let mut members = std::mem::take(&mut self.slots[s].members);
            members.set(seed, true);
            pool.set(seed, false);
            frontier.fill(false);
            frontier.set(seed, true);
            loop {
                next.fill(false);
                for site in frontier.iter_ones() {
                    next.or_assign(&self.live_adj[site]);
                }
                next.and_assign(&pool);
                if next.is_all_clear() {
                    break;
                }
                pool.and_not_assign(&next);
                members.or_assign(&next);
                std::mem::swap(&mut frontier, &mut next);
            }
            let mut votes = 0u64;
            let mut size = 0u32;
            for site in members.iter_ones() {
                self.comp_of[site] = slot;
                votes += self.votes[site];
                size += 1;
            }
            self.slots[s].members = members;
            self.slots[s].votes = votes;
            self.slots[s].size = size;
        }
        self.frontier = frontier;
        self.next = next;
    }

    /// Relabels the smaller component into the larger (amortized
    /// smaller-half argument — the classic union-by-size bound).
    fn merge_slots(&mut self, x: u32, y: u32) {
        debug_assert_ne!(x, y);
        let (keep, drop) = if self.slots[x as usize].size >= self.slots[y as usize].size {
            (x, y)
        } else {
            (y, x)
        };
        let mut moved = std::mem::take(&mut self.slots[drop as usize].members);
        for site in moved.iter_ones() {
            self.comp_of[site] = keep;
        }
        let k = keep as usize;
        self.slots[k].members.or_assign(&moved);
        self.slots[k].votes += self.slots[drop as usize].votes;
        self.slots[k].size += self.slots[drop as usize].size;
        moved.fill(false);
        self.slots[drop as usize].members = moved;
        self.free_slot(drop);
    }

    /// Pops a cleared slot off the free list (or grows the slab). The
    /// free list bounds the slab at the peak live component count, so
    /// long runs never grow it past `n`.
    fn alloc_slot(&mut self) -> u32 {
        if let Some(slot) = self.free.pop() {
            slot
        } else {
            self.slots.push(CompSlot {
                members: BitSet::new(self.n),
                votes: 0,
                size: 0,
            });
            (self.slots.len() - 1) as u32
        }
    }

    fn free_slot(&mut self, slot: u32) {
        let s = slot as usize;
        if self.slots[s].members.len() == self.n {
            self.slots[s].members.fill(false);
        } else {
            // The member bitset was moved out to seed a re-scan; restore
            // capacity so the slot can be reused.
            self.slots[s].members = BitSet::new(self.n);
        }
        self.slots[s].votes = 0;
        self.slots[s].size = 0;
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_matches_fresh(
        topology: &Topology,
        state: &NetworkState,
        votes: &[u64],
        kernel: &DeltaConnectivity,
    ) {
        let fresh = ComponentView::compute(topology, state, votes);
        assert_eq!(kernel.to_view(), fresh);
    }

    #[test]
    fn build_matches_compute_on_degraded_ring() {
        let t = Topology::ring_with_chords(21, 4);
        let mut s = NetworkState::all_up(&t);
        s.set_site(3, false);
        s.set_site(17, false);
        s.set_link(0, false);
        s.set_link(9, false);
        let votes: Vec<u64> = (0..21).map(|i| (i % 4 + 1) as u64).collect();
        let kernel = DeltaConnectivity::new(&t, &s, &votes);
        check_matches_fresh(&t, &s, &votes, &kernel);
    }

    #[test]
    fn link_cut_splits_and_repair_merges() {
        let t = Topology::ring(6);
        let mut s = NetworkState::all_up(&t);
        let votes = vec![1u64; 6];
        let mut k = DeltaConnectivity::new(&t, &s, &votes);
        // One cut: still connected (rescan, no split).
        s.set_link(0, false);
        assert_eq!(
            k.apply(TopologyEvent::Link { link: 0, up: false }),
            DeltaOutcome::Rescan
        );
        check_matches_fresh(&t, &s, &votes, &k);
        // Second cut: the ring splits in two.
        s.set_link(3, false);
        assert_eq!(
            k.apply(TopologyEvent::Link { link: 3, up: false }),
            DeltaOutcome::Rescan
        );
        check_matches_fresh(&t, &s, &votes, &k);
        assert_eq!(k.to_view().num_components(), 2);
        // Repair one: merge without BFS.
        s.set_link(0, true);
        assert_eq!(
            k.apply(TopologyEvent::Link { link: 0, up: true }),
            DeltaOutcome::Merge
        );
        check_matches_fresh(&t, &s, &votes, &k);
        assert_eq!(k.to_view().num_components(), 1);
    }

    #[test]
    fn noop_filters_fire() {
        let t = Topology::ring(5);
        let mut s = NetworkState::all_up(&t);
        let votes = vec![1u64; 5];
        let mut k = DeltaConnectivity::new(&t, &s, &votes);
        // Fail site 1: its links (0,1) and (1,2) now have a down endpoint.
        s.set_site(1, false);
        assert_eq!(
            k.apply(TopologyEvent::Site { site: 1, up: false }),
            DeltaOutcome::Rescan
        );
        // Toggling a link with a down endpoint is a no-op both ways.
        s.set_link(0, false);
        assert_eq!(
            k.apply(TopologyEvent::Link { link: 0, up: false }),
            DeltaOutcome::Noop
        );
        s.set_link(0, true);
        assert_eq!(
            k.apply(TopologyEvent::Link { link: 0, up: true }),
            DeltaOutcome::Noop
        );
        check_matches_fresh(&t, &s, &votes, &k);
        // Isolate site 3 fully, then fail it: singleton removal no-op.
        s.set_link(2, false); // (2,3)
        k.apply(TopologyEvent::Link { link: 2, up: false });
        s.set_link(3, false); // (3,4)
        k.apply(TopologyEvent::Link { link: 3, up: false });
        check_matches_fresh(&t, &s, &votes, &k);
        s.set_site(3, false);
        assert_eq!(
            k.apply(TopologyEvent::Site { site: 3, up: false }),
            DeltaOutcome::Noop
        );
        check_matches_fresh(&t, &s, &votes, &k);
    }

    #[test]
    fn intra_component_link_repair_is_noop() {
        let t = Topology::ring_with_chords(8, 2);
        let mut s = NetworkState::all_up(&t);
        let votes = vec![1u64; 8];
        let mut k = DeltaConnectivity::new(&t, &s, &votes);
        // Drop one ring edge: chords keep everything connected, so the
        // eventual repair reconnects within one component.
        s.set_link(0, false);
        k.apply(TopologyEvent::Link { link: 0, up: false });
        s.set_link(0, true);
        assert_eq!(
            k.apply(TopologyEvent::Link { link: 0, up: true }),
            DeltaOutcome::Noop
        );
        check_matches_fresh(&t, &s, &votes, &k);
    }

    #[test]
    fn hub_failure_and_recovery_on_star() {
        let t = Topology::star(6);
        let mut s = NetworkState::all_up(&t);
        let votes: Vec<u64> = (1..=6).map(|v| v as u64).collect();
        let mut k = DeltaConnectivity::new(&t, &s, &votes);
        s.set_site(0, false);
        assert_eq!(
            k.apply(TopologyEvent::Site { site: 0, up: false }),
            DeltaOutcome::Rescan
        );
        check_matches_fresh(&t, &s, &votes, &k);
        assert_eq!(k.to_view().num_components(), 5);
        s.set_site(0, true);
        assert_eq!(
            k.apply(TopologyEvent::Site { site: 0, up: true }),
            DeltaOutcome::Merge
        );
        check_matches_fresh(&t, &s, &votes, &k);
        assert_eq!(k.to_view().num_components(), 1);
    }

    #[test]
    fn all_down_and_back_up() {
        let t = Topology::ring(4);
        let mut s = NetworkState::all_up(&t);
        let votes = vec![2u64; 4];
        let mut k = DeltaConnectivity::new(&t, &s, &votes);
        for i in 0..4 {
            s.set_site(i, false);
            k.apply(TopologyEvent::Site { site: i, up: false });
            check_matches_fresh(&t, &s, &votes, &k);
        }
        assert_eq!(k.to_view().num_components(), 0);
        for i in 0..4 {
            s.set_site(i, true);
            k.apply(TopologyEvent::Site { site: i, up: true });
            check_matches_fresh(&t, &s, &votes, &k);
        }
        assert_eq!(k.to_view().num_components(), 1);
        assert!(k.in_sync_with(&s));
    }

    #[test]
    fn slab_stays_bounded_under_churn() {
        let t = Topology::ring(9);
        let mut s = NetworkState::all_up(&t);
        let votes = vec![1u64; 9];
        let mut k = DeltaConnectivity::new(&t, &s, &votes);
        for round in 0..50usize {
            let site = (round * 5) % 9;
            let up = !s.site_up(site);
            s.set_site(site, up);
            k.apply(TopologyEvent::Site { site, up });
            let link = (round * 3) % 9;
            let lup = !s.link_up(link);
            s.set_link(link, lup);
            k.apply(TopologyEvent::Link { link, up: lup });
            check_matches_fresh(&t, &s, &votes, &k);
        }
        assert!(k.slots.len() <= 9, "slab grew past peak: {}", k.slots.len());
    }
}
