//! A compact fixed-size bit set.
//!
//! Site/link up-down state is consulted on every BFS step of component
//! recomputation — the hottest loop in the simulator — so it lives in a
//! dense `u64`-word bit set rather than a `Vec<bool>` or hash set.

/// Fixed-capacity bit set backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a set of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a set of `len` bits, all set.
    pub fn all_set(len: usize) -> Self {
        let mut s = Self::new(len);
        for i in 0..len {
            s.set(i, true);
        }
        s
    }

    /// Capacity in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sets every bit.
    pub fn fill(&mut self, value: bool) {
        let w = if value { u64::MAX } else { 0 };
        for word in &mut self.words {
            *word = w;
        }
        if value {
            // Clear the unused tail bits so count_ones stays correct.
            let tail = self.len % 64;
            if tail != 0 {
                if let Some(last) = self.words.last_mut() {
                    *last &= (1u64 << tail) - 1;
                }
            }
        }
    }

    /// Iterates over indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear() {
        let s = BitSet::new(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.count_ones(), 0);
        assert!(!s.get(0));
        assert!(!s.get(129));
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut s = BitSet::new(100);
        s.set(0, true);
        s.set(63, true);
        s.set(64, true);
        s.set(99, true);
        assert!(s.get(0) && s.get(63) && s.get(64) && s.get(99));
        assert!(!s.get(1) && !s.get(65));
        assert_eq!(s.count_ones(), 4);
        s.set(63, false);
        assert!(!s.get(63));
        assert_eq!(s.count_ones(), 3);
    }

    #[test]
    fn all_set_and_fill() {
        let s = BitSet::all_set(70);
        assert_eq!(s.count_ones(), 70);
        let mut t = BitSet::new(70);
        t.fill(true);
        assert_eq!(t, s);
        t.fill(false);
        assert_eq!(t.count_ones(), 0);
    }

    #[test]
    fn fill_true_does_not_overcount_tail() {
        let mut s = BitSet::new(65);
        s.fill(true);
        assert_eq!(s.count_ones(), 65);
    }

    #[test]
    fn iter_ones_yields_sorted_indices() {
        let mut s = BitSet::new(200);
        for i in [3, 64, 65, 128, 199] {
            s.set(i, true);
        }
        let got: Vec<usize> = s.iter_ones().collect();
        assert_eq!(got, vec![3, 64, 65, 128, 199]);
    }

    #[test]
    fn iter_ones_empty() {
        let s = BitSet::new(10);
        assert_eq!(s.iter_ones().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitSet::new(8).get(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitSet::new(8).set(8, true);
    }
}
