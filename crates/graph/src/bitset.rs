//! A compact fixed-size bit set.
//!
//! Site/link up-down state is consulted on every BFS step of component
//! recomputation — the hottest loop in the simulator — so it lives in a
//! dense `u64`-word bit set rather than a `Vec<bool>` or hash set.

/// Fixed-capacity bit set backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a set of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a set of `len` bits, all set.
    pub fn all_set(len: usize) -> Self {
        let mut s = Self::new(len);
        for i in 0..len {
            s.set(i, true);
        }
        s
    }

    /// Capacity in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sets every bit.
    pub fn fill(&mut self, value: bool) {
        let w = if value { u64::MAX } else { 0 };
        for word in &mut self.words {
            *word = w;
        }
        if value {
            // Clear the unused tail bits so count_ones stays correct.
            let tail = self.len % 64;
            if tail != 0 {
                if let Some(last) = self.words.last_mut() {
                    *last &= (1u64 << tail) - 1;
                }
            }
        }
    }

    /// The backing words (the tail bits beyond `len` are always clear).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        self.words.iter().enumerate().find_map(|(wi, &w)| {
            if w == 0 {
                None
            } else {
                Some(wi * 64 + w.trailing_zeros() as usize)
            }
        })
    }

    /// `self |= other` (word-parallel union).
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn or_assign(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bit set capacities must match");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= other` (word-parallel intersection).
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn and_assign(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bit set capacities must match");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self &= !other` (word-parallel difference).
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn and_not_assign(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bit set capacities must match");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The whole set as a single `u64` mask — the interchange format of
    /// the quorum-algebra layer, whose quorum containment checks are
    /// one `AND` against such a mask.
    ///
    /// # Panics
    /// Panics if the capacity exceeds 64 bits.
    #[inline]
    pub fn as_u64_mask(&self) -> u64 {
        assert!(
            self.len <= 64,
            "set of {} bits exceeds a u64 mask",
            self.len
        );
        self.words.first().copied().unwrap_or(0)
    }

    /// True if no bit is set.
    pub fn is_all_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if `self` and `other` share at least one set bit.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bit set capacities must match");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Copies `other` into `self` without reallocating.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bit set capacities must match");
        self.words.copy_from_slice(&other.words);
    }

    /// Iterates over indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

impl Default for BitSet {
    /// An empty zero-capacity set (placeholder for `mem::take`).
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear() {
        let s = BitSet::new(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.count_ones(), 0);
        assert!(!s.get(0));
        assert!(!s.get(129));
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut s = BitSet::new(100);
        s.set(0, true);
        s.set(63, true);
        s.set(64, true);
        s.set(99, true);
        assert!(s.get(0) && s.get(63) && s.get(64) && s.get(99));
        assert!(!s.get(1) && !s.get(65));
        assert_eq!(s.count_ones(), 4);
        s.set(63, false);
        assert!(!s.get(63));
        assert_eq!(s.count_ones(), 3);
    }

    #[test]
    fn all_set_and_fill() {
        let s = BitSet::all_set(70);
        assert_eq!(s.count_ones(), 70);
        let mut t = BitSet::new(70);
        t.fill(true);
        assert_eq!(t, s);
        t.fill(false);
        assert_eq!(t.count_ones(), 0);
    }

    #[test]
    fn fill_true_does_not_overcount_tail() {
        let mut s = BitSet::new(65);
        s.fill(true);
        assert_eq!(s.count_ones(), 65);
    }

    #[test]
    fn iter_ones_yields_sorted_indices() {
        let mut s = BitSet::new(200);
        for i in [3, 64, 65, 128, 199] {
            s.set(i, true);
        }
        let got: Vec<usize> = s.iter_ones().collect();
        assert_eq!(got, vec![3, 64, 65, 128, 199]);
    }

    #[test]
    fn iter_ones_empty() {
        let s = BitSet::new(10);
        assert_eq!(s.iter_ones().count(), 0);
    }

    #[test]
    fn word_ops_match_bitwise_semantics() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(130);
        for i in [0, 5, 63, 64, 100, 129] {
            a.set(i, true);
        }
        for i in [5, 64, 99, 129] {
            b.set(i, true);
        }
        let mut or = a.clone();
        or.or_assign(&b);
        let want: Vec<usize> = vec![0, 5, 63, 64, 99, 100, 129];
        assert_eq!(or.iter_ones().collect::<Vec<_>>(), want);
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![5, 64, 129]);
        let mut diff = a.clone();
        diff.and_not_assign(&b);
        assert_eq!(diff.iter_ones().collect::<Vec<_>>(), vec![0, 63, 100]);
        assert!(a.intersects(&b));
        assert!(!and.is_all_clear());
        assert!(BitSet::new(130).is_all_clear());
    }

    #[test]
    fn first_one_finds_lowest() {
        let mut s = BitSet::new(200);
        assert_eq!(s.first_one(), None);
        s.set(150, true);
        assert_eq!(s.first_one(), Some(150));
        s.set(64, true);
        assert_eq!(s.first_one(), Some(64));
        s.set(3, true);
        assert_eq!(s.first_one(), Some(3));
    }

    #[test]
    fn copy_from_reuses_allocation() {
        let mut a = BitSet::new(80);
        let mut b = BitSet::new(80);
        b.set(7, true);
        b.set(77, true);
        a.copy_from(&b);
        assert_eq!(a, b);
        b.set(7, false);
        assert!(a.get(7), "copy is independent");
    }

    #[test]
    #[should_panic(expected = "capacities must match")]
    fn mismatched_or_panics() {
        let mut a = BitSet::new(10);
        a.or_assign(&BitSet::new(11));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitSet::new(8).get(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitSet::new(8).set(8, true);
    }
}
