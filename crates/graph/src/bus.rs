//! The single-bus architecture of §4.2.
//!
//! A bus network has `n` sites attached to one shared medium. When the bus
//! is up, every operational site is in one component; when it is down, the
//! paper distinguishes two designs:
//!
//! * [`BusFailureMode::SitesFailWithBus`] — "no site can function when the
//!   bus is inoperative": a bus failure puts every site in a component of
//!   size zero.
//! * [`BusFailureMode::SitesIndependent`] — sites survive a bus failure but
//!   are isolated: each up site forms a singleton component.
//!
//! The analytic densities for both designs live in
//! `quorum_core::analytic::bus`; this type is the simulatable counterpart.

/// How sites behave when the bus fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusFailureMode {
    /// Sites cannot function without the bus.
    SitesFailWithBus,
    /// Sites keep running but are isolated (singleton components).
    SitesIndependent,
}

/// State of a single-bus network.
#[derive(Debug, Clone)]
pub struct BusNetwork {
    site_up: Vec<bool>,
    bus_up: bool,
    mode: BusFailureMode,
}

impl BusNetwork {
    /// A fully operational bus network of `n` sites.
    pub fn new(n: usize, mode: BusFailureMode) -> Self {
        assert!(n > 0, "bus network needs at least one site");
        Self {
            site_up: vec![true; n],
            bus_up: true,
            mode,
        }
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.site_up.len()
    }

    /// Failure-mode variant.
    pub fn mode(&self) -> BusFailureMode {
        self.mode
    }

    /// Sets a site's state.
    pub fn set_site(&mut self, site: usize, up: bool) {
        self.site_up[site] = up;
    }

    /// Sets the bus state.
    pub fn set_bus(&mut self, up: bool) {
        self.bus_up = up;
    }

    /// Is the bus up?
    pub fn bus_up(&self) -> bool {
        self.bus_up
    }

    /// Is `site` operational *as a site* (ignoring the bus)?
    pub fn site_up(&self, site: usize) -> bool {
        match self.mode {
            BusFailureMode::SitesFailWithBus => self.site_up[site] && self.bus_up,
            BusFailureMode::SitesIndependent => self.site_up[site],
        }
    }

    /// Votes in the component containing `site`, weighting each site by
    /// `votes[site]`; 0 if the site is effectively down.
    pub fn votes_of(&self, site: usize, votes: &[u64]) -> u64 {
        assert_eq!(votes.len(), self.site_up.len(), "one vote weight per site");
        if !self.site_up(site) {
            return 0;
        }
        if self.bus_up {
            self.site_up
                .iter()
                .enumerate()
                .filter(|&(_, &up)| up)
                .map(|(s, _)| votes[s])
                .sum()
        } else {
            // SitesIndependent and site is up: isolated singleton.
            votes[site]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_up_forms_one_component() {
        let mut b = BusNetwork::new(5, BusFailureMode::SitesIndependent);
        b.set_site(4, false);
        let votes = vec![1; 5];
        assert_eq!(b.votes_of(0, &votes), 4);
        assert_eq!(b.votes_of(4, &votes), 0);
    }

    #[test]
    fn bus_down_independent_sites_are_singletons() {
        let mut b = BusNetwork::new(4, BusFailureMode::SitesIndependent);
        b.set_bus(false);
        let votes = vec![2; 4];
        for s in 0..4 {
            assert_eq!(b.votes_of(s, &votes), 2, "site {s} isolated but up");
        }
    }

    #[test]
    fn bus_down_dependent_sites_all_fail() {
        let mut b = BusNetwork::new(4, BusFailureMode::SitesFailWithBus);
        b.set_bus(false);
        let votes = vec![1; 4];
        for s in 0..4 {
            assert!(!b.site_up(s));
            assert_eq!(b.votes_of(s, &votes), 0);
        }
        b.set_bus(true);
        assert_eq!(b.votes_of(0, &votes), 4);
    }

    #[test]
    fn weighted_bus_votes() {
        let b = BusNetwork::new(3, BusFailureMode::SitesIndependent);
        assert_eq!(b.votes_of(1, &[1, 5, 10]), 16);
    }
}
