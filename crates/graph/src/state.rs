//! Mutable up/down state of sites and links.

use crate::bitset::BitSet;
use crate::topology::Topology;

/// Which sites and links of a [`Topology`] are currently operational.
///
/// The paper's model is fail-stop with eventual repair (§5.1); this struct
/// is the pure state — failure *scheduling* lives in `quorum-des`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkState {
    site_up: BitSet,
    link_up: BitSet,
}

impl NetworkState {
    /// All sites and links up.
    pub fn all_up(topology: &Topology) -> Self {
        Self {
            site_up: BitSet::all_set(topology.num_sites()),
            link_up: BitSet::all_set(topology.num_links()),
        }
    }

    /// All sites and links down.
    pub fn all_down(topology: &Topology) -> Self {
        Self {
            site_up: BitSet::new(topology.num_sites()),
            link_up: BitSet::new(topology.num_links()),
        }
    }

    /// Is `site` operational?
    #[inline]
    pub fn site_up(&self, site: usize) -> bool {
        self.site_up.get(site)
    }

    /// Is `link` operational?
    #[inline]
    pub fn link_up(&self, link: usize) -> bool {
        self.link_up.get(link)
    }

    /// Sets the state of `site`. Returns `true` if the state changed.
    pub fn set_site(&mut self, site: usize, up: bool) -> bool {
        let changed = self.site_up.get(site) != up;
        self.site_up.set(site, up);
        changed
    }

    /// Sets the state of `link`. Returns `true` if the state changed.
    pub fn set_link(&mut self, link: usize, up: bool) -> bool {
        let changed = self.link_up.get(link) != up;
        self.link_up.set(link, up);
        changed
    }

    /// The site up/down bits (read-only; word-level consumers like the
    /// incremental connectivity kernel mask against this directly).
    pub fn site_bits(&self) -> &BitSet {
        &self.site_up
    }

    /// The link up/down bits (read-only).
    pub fn link_bits(&self) -> &BitSet {
        &self.link_up
    }

    /// Number of operational sites.
    pub fn sites_up(&self) -> usize {
        self.site_up.count_ones()
    }

    /// Number of operational links.
    pub fn links_up(&self) -> usize {
        self.link_up.count_ones()
    }

    /// Number of sites tracked.
    pub fn num_sites(&self) -> usize {
        self.site_up.len()
    }

    /// Number of links tracked.
    pub fn num_links(&self) -> usize {
        self.link_up.len()
    }

    /// Resets every component to up (start of a fresh simulation batch —
    /// §5.2: "the network is reset to the initial state before each batch").
    pub fn reset_all_up(&mut self) {
        self.site_up.fill(true);
        self.link_up.fill(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_up_and_all_down() {
        let t = Topology::ring(6);
        let up = NetworkState::all_up(&t);
        assert_eq!(up.sites_up(), 6);
        assert_eq!(up.links_up(), 6);
        let down = NetworkState::all_down(&t);
        assert_eq!(down.sites_up(), 0);
        assert_eq!(down.links_up(), 0);
    }

    #[test]
    fn set_site_reports_change() {
        let t = Topology::ring(4);
        let mut s = NetworkState::all_up(&t);
        assert!(s.set_site(2, false));
        assert!(!s.set_site(2, false), "idempotent set is not a change");
        assert!(!s.site_up(2));
        assert_eq!(s.sites_up(), 3);
        assert!(s.set_site(2, true));
        assert_eq!(s.sites_up(), 4);
    }

    #[test]
    fn set_link_reports_change() {
        let t = Topology::ring(4);
        let mut s = NetworkState::all_up(&t);
        assert!(s.set_link(0, false));
        assert!(!s.link_up(0));
        assert_eq!(s.links_up(), 3);
    }

    #[test]
    fn reset_restores_everything() {
        let t = Topology::ring(5);
        let mut s = NetworkState::all_up(&t);
        s.set_site(1, false);
        s.set_link(3, false);
        s.reset_all_up();
        assert_eq!(s.sites_up(), 5);
        assert_eq!(s.links_up(), 5);
    }
}
