//! Union-find (disjoint set union) with path halving and union by size.
//!
//! Used for static connectivity checks in tests and benchmarks, and as the
//! reference implementation the BFS component labelling is validated
//! against.

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// True if `a` and `b` share a set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(!uf.same(0, 1));
        assert_eq!(uf.size_of(3), 1);
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already same set");
        assert!(uf.same(0, 2));
        assert_eq!(uf.size_of(1), 3);
        assert_eq!(uf.num_components(), 3);
    }

    #[test]
    fn chain_union_all() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert_eq!(uf.size_of(0), n);
        assert!(uf.same(0, n - 1));
    }

    #[test]
    fn matches_bfs_components() {
        use crate::{ComponentView, NetworkState, Topology};
        let t = Topology::ring_with_chords(15, 5);
        let mut s = NetworkState::all_up(&t);
        s.set_site(3, false);
        s.set_link(0, false);
        s.set_link(7, false);
        let view = ComponentView::compute(&t, &s, &[1; 15]);
        let mut uf = UnionFind::new(15);
        for (idx, &(a, b)) in t.links().iter().enumerate() {
            if s.link_up(idx) && s.site_up(a) && s.site_up(b) {
                uf.union(a, b);
            }
        }
        for a in 0..15 {
            for b in 0..15 {
                if s.site_up(a) && s.site_up(b) {
                    assert_eq!(view.connected(a, b), uf.same(a, b), "({a},{b})");
                }
            }
        }
    }
}
