//! Network substrate: topologies, component state, and connectivity.
//!
//! The paper's system model (§5.1): sites and bidirectional links, both
//! fail-stop, both repairable; message passing is the only communication, so
//! failures partition the network into *components* (maximal sets of
//! mutually-communicating operational sites). The quorum machinery upstream
//! only ever asks one question of this crate: *how many votes are in the
//! component containing site `i` right now?*
//!
//! Provided here:
//!
//! * [`Topology`] — immutable site/link structure with the paper's builders
//!   (ring, ring-plus-chords "Topology *k*", fully connected) plus extras
//!   (star, grid, path, G(n,p)) used by tests and examples.
//! * [`NetworkState`] — which sites/links are currently up.
//! * [`ComponentView`] / [`ComponentCache`] — BFS component labelling over
//!   the up-subgraph, with a dirty-flag cache so the simulator only pays for
//!   recomputation when topology events actually intervened between
//!   accesses.
//! * [`DeltaConnectivity`] — the incremental kernel behind
//!   [`ComponentCache::incremental`]: recoveries merge components
//!   (union-find over member bitsets), failures re-scan only the affected
//!   component, provable no-ops are filtered, and all scans are
//!   word-parallel over per-site adjacency bitsets.
//! * [`BusNetwork`] — the single-bus architecture of §4.2 (both variants).
//! * [`UnionFind`] — static connectivity helper used in tests/benches.
//! * [`articulation_points`] — cut-vertex detection (Tarjan) feeding the
//!   structural vote-weighting heuristic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod articulation;
pub mod bitset;
pub mod bus;
pub mod connectivity;
pub mod delta;
pub mod state;
pub mod topology;
pub mod unionfind;

pub use articulation::{articulation_points, articulation_weighted_votes};
pub use bitset::BitSet;
pub use bus::{BusFailureMode, BusNetwork};
pub use connectivity::{ComponentCache, ComponentView};
pub use delta::{DeltaConnectivity, DeltaCounters, DeltaOutcome, TopologyEvent};
pub use state::NetworkState;
pub use topology::Topology;
pub use unionfind::UnionFind;
