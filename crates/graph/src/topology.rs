//! Immutable network topologies.
//!
//! The paper's simulation study (§5.1) uses 101-site networks "configured
//! into various topologies beginning with a ring, and adding links until all
//! the sites are fully connected", denoting by *Topology k* a ring plus `k`
//! chords for `k ∈ {0, 1, 2, 4, 16, 256, 4949}` (4949 chords on a 101-ring
//! is the complete graph). The exact chord placement is in the authors'
//! unavailable companion paper; we substitute the deterministic placement
//! documented on [`Topology::ring_with_chords`], which interpolates ring →
//! complete graph symmetrically.

use rand::Rng;

/// An immutable undirected multigraph-free topology of sites and links.
///
/// Sites are identified by `0..n`; links by their index into
/// [`Topology::links`]. Self-loops and duplicate links are rejected at
/// construction.
///
/// # Examples
/// ```
/// use quorum_graph::Topology;
///
/// // The paper's Topology 16: a 101-ring plus 16 chords.
/// let t = Topology::ring_with_chords(101, 16);
/// assert_eq!(t.num_sites(), 101);
/// assert_eq!(t.num_links(), 117);
/// // 4949 chords complete the graph.
/// let full = Topology::ring_with_chords(101, 4949);
/// assert_eq!(full.num_links(), 101 * 100 / 2);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    links: Vec<(usize, usize)>,
    /// adjacency[s] = list of (neighbor, link index)
    adjacency: Vec<Vec<(usize, usize)>>,
    name: String,
}

impl Topology {
    /// Builds a topology from an explicit link list.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, duplicate links, or
    /// `n == 0`.
    pub fn from_links(n: usize, links: Vec<(usize, usize)>, name: impl Into<String>) -> Self {
        assert!(n > 0, "topology needs at least one site");
        let mut seen = std::collections::HashSet::with_capacity(links.len());
        let mut canonical = Vec::with_capacity(links.len());
        for &(a, b) in &links {
            assert!(a < n && b < n, "link ({a},{b}) out of range for n={n}");
            assert_ne!(a, b, "self-loop at site {a}");
            let key = (a.min(b), a.max(b));
            assert!(seen.insert(key), "duplicate link ({a},{b})");
            canonical.push(key);
        }
        let mut adjacency = vec![Vec::new(); n];
        for (idx, &(a, b)) in canonical.iter().enumerate() {
            adjacency[a].push((b, idx));
            adjacency[b].push((a, idx));
        }
        Self {
            n,
            links: canonical,
            adjacency,
            name: name.into(),
        }
    }

    /// A ring of `n ≥ 3` sites: links `(i, i+1 mod n)`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 sites");
        let links = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Self::from_links(n, links, format!("ring-{n}"))
    }

    /// A path (line) of `n ≥ 2` sites.
    pub fn path(n: usize) -> Self {
        assert!(n >= 2, "a path needs at least 2 sites");
        let links = (0..n - 1).map(|i| (i, i + 1)).collect();
        Self::from_links(n, links, format!("path-{n}"))
    }

    /// The complete graph on `n` sites.
    pub fn fully_connected(n: usize) -> Self {
        let mut links = Vec::with_capacity(n * (n - 1) / 2);
        for a in 0..n {
            for b in a + 1..n {
                links.push((a, b));
            }
        }
        Self::from_links(n, links, format!("complete-{n}"))
    }

    /// A star: site 0 is the hub.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "a star needs at least 2 sites");
        let links = (1..n).map(|i| (0, i)).collect();
        Self::from_links(n, links, format!("star-{n}"))
    }

    /// A single-bus network of `sites` database sites expressed over the
    /// point-to-point machinery: node 0 models the shared medium (the bus)
    /// and nodes `1..=sites` are the database sites, each attached to the
    /// medium by one link. When the medium node fails every site is
    /// isolated — the §4.2 sites-independent bus. Callers give node 0 zero
    /// votes and zero workload weight so it never counts or submits.
    ///
    /// Returns `sites + 1` nodes; the medium is index 0.
    pub fn bus(sites: usize) -> Self {
        assert!(sites >= 2, "a bus needs at least 2 sites");
        let links = (1..=sites).map(|i| (0, i)).collect();
        Self::from_links(sites + 1, links, format!("bus-{sites}"))
    }

    /// A `rows × cols` grid.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1 && rows * cols >= 2, "grid too small");
        let at = |r: usize, c: usize| r * cols + c;
        let mut links = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    links.push((at(r, c), at(r, c + 1)));
                }
                if r + 1 < rows {
                    links.push((at(r, c), at(r + 1, c)));
                }
            }
        }
        Self::from_links(rows * cols, links, format!("grid-{rows}x{cols}"))
    }

    /// A `rows × cols` torus (grid with wraparound in both dimensions).
    ///
    /// # Panics
    /// Panics unless both dimensions are ≥ 3 (smaller wraps duplicate
    /// links).
    pub fn torus(rows: usize, cols: usize) -> Self {
        assert!(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
        let at = |r: usize, c: usize| r * cols + c;
        let mut links = Vec::with_capacity(2 * rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                links.push((at(r, c), at(r, (c + 1) % cols)));
                links.push((at(r, c), at((r + 1) % rows, c)));
            }
        }
        Self::from_links(rows * cols, links, format!("torus-{rows}x{cols}"))
    }

    /// A `d`-dimensional hypercube on `2^d` sites (neighbors differ in one
    /// bit).
    ///
    /// # Panics
    /// Panics unless `1 <= d <= 16`.
    pub fn hypercube(d: u32) -> Self {
        assert!((1..=16).contains(&d), "hypercube dimension must be 1..=16");
        let n = 1usize << d;
        let mut links = Vec::with_capacity(n * d as usize / 2);
        for a in 0..n {
            for bit in 0..d {
                let b = a ^ (1 << bit);
                if a < b {
                    links.push((a, b));
                }
            }
        }
        Self::from_links(n, links, format!("hypercube-{d}"))
    }

    /// A ring of `clusters` fully-connected clusters of `cluster_size`
    /// sites each — the classic WAN shape (data centers on a backbone
    /// ring). Site `c·cluster_size + i` is member `i` of cluster `c`;
    /// consecutive clusters are joined by one link between their
    /// "gateway" members (member 0 of one to member 1 of the next, so a
    /// single site failure doesn't sever both of a cluster's WAN links).
    ///
    /// # Panics
    /// Panics unless `clusters ≥ 3` and `cluster_size ≥ 2`.
    pub fn ring_of_clusters(clusters: usize, cluster_size: usize) -> Self {
        assert!(clusters >= 3, "need at least 3 clusters for a ring");
        assert!(cluster_size >= 2, "clusters need at least 2 sites");
        let n = clusters * cluster_size;
        let at = |c: usize, i: usize| c * cluster_size + i;
        let mut links = Vec::new();
        for c in 0..clusters {
            for a in 0..cluster_size {
                for b in a + 1..cluster_size {
                    links.push((at(c, a), at(c, b)));
                }
            }
            links.push((at(c, 0), at((c + 1) % clusters, 1)));
        }
        Self::from_links(n, links, format!("clusters-{clusters}x{cluster_size}"))
    }

    /// Erdős–Rényi `G(n, p)` random graph (each possible link present
    /// independently with probability `p`).
    pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must lie in [0,1]");
        let mut links = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                if rng.random::<f64>() < p {
                    links.push((a, b));
                }
            }
        }
        Self::from_links(n, links, format!("gnp-{n}-{p}"))
    }

    /// The paper's *Topology k*: an `n`-ring plus `k` chords.
    ///
    /// Chord placement (our substitution for the unavailable companion
    /// paper \[14\]): chords are grouped by ring distance `d`, longest
    /// (`⌊n/2⌋`) first — a chord's value for shrinking the diameter grows
    /// with its span. Within a distance class the chords `(i, (i+d) mod n)`
    /// are taken in **golden-stride** order, `i_j = j·s mod n` with
    /// `s ≈ n/φ²` coprime to `n`: consecutive picks land far apart
    /// (low-discrepancy), so small `k` yields *crossing* diameters rather
    /// than chords sharing an endpoint, and every class is eventually
    /// covered. The enumeration reaches every non-ring pair, so
    /// `k = n(n−1)/2 − n` yields the complete graph.
    ///
    /// # Panics
    /// Panics if `k` exceeds the number of non-ring pairs or `n < 5`.
    pub fn ring_with_chords(n: usize, k: usize) -> Self {
        assert!(n >= 5, "chorded rings need at least 5 sites");
        let max_chords = n * (n - 1) / 2 - n;
        assert!(
            k <= max_chords,
            "at most {max_chords} chords fit on a {n}-ring, requested {k}"
        );
        fn gcd(a: usize, b: usize) -> usize {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        // Golden-section stride, adjusted to be coprime with n.
        let mut stride = ((n as f64) * 0.381_966_011).round() as usize;
        stride = stride.clamp(1, n - 1);
        while gcd(stride, n) != 1 {
            stride += 1;
        }
        let mut links: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let mut seen: std::collections::HashSet<(usize, usize)> =
            links.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        let mut remaining = k;
        let mut d = n / 2;
        while remaining > 0 && d >= 2 {
            for j in 0..n {
                if remaining == 0 {
                    break;
                }
                let i = (j * stride) % n;
                let a = i;
                let b = (i + d) % n;
                let key = (a.min(b), a.max(b));
                // For even n the distance-n/2 class contains each chord
                // twice ((i, i+d) == (i+d, i+2d)); `seen` dedupes.
                if seen.insert(key) {
                    links.push(key);
                    remaining -= 1;
                }
            }
            d -= 1;
        }
        assert_eq!(remaining, 0, "chord enumeration exhausted early");
        Self::from_links(n, links, format!("ring-{n}+{k}chords"))
    }

    /// The paper's seven evaluation topologies for `n = 101`:
    /// `k ∈ {0, 1, 2, 4, 16, 256, 4949}`.
    pub fn paper_topologies() -> Vec<Topology> {
        [0usize, 1, 2, 4, 16, 256, 4949]
            .iter()
            .map(|&k| Topology::ring_with_chords(101, k))
            .collect()
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.n
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Link endpoint list (canonicalized `a < b`).
    pub fn links(&self) -> &[(usize, usize)] {
        &self.links
    }

    /// Endpoints of link `idx`.
    pub fn link(&self, idx: usize) -> (usize, usize) {
        self.links[idx]
    }

    /// Neighbors of `site` as `(neighbor, link index)` pairs.
    pub fn neighbors(&self, site: usize) -> &[(usize, usize)] {
        &self.adjacency[site]
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Degree of `site`.
    pub fn degree(&self, site: usize) -> usize {
        self.adjacency[site].len()
    }

    /// Diameter of the (fully-up) topology: the longest shortest path, or
    /// `None` if disconnected. O(n·m) BFS.
    pub fn diameter(&self) -> Option<usize> {
        let n = self.n;
        let mut diameter = 0usize;
        for start in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &(v, _) in self.neighbors(u) {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            let far = *dist.iter().max().expect("n > 0");
            if far == usize::MAX {
                return None;
            }
            diameter = diameter.max(far);
        }
        Some(diameter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ring_structure() {
        let t = Topology::ring(5);
        assert_eq!(t.num_sites(), 5);
        assert_eq!(t.num_links(), 5);
        for s in 0..5 {
            assert_eq!(t.degree(s), 2);
        }
    }

    #[test]
    fn bus_shape() {
        let t = Topology::bus(7);
        assert_eq!(t.num_sites(), 8, "7 sites + the medium node");
        assert_eq!(t.num_links(), 7, "one attachment per site");
        assert_eq!(t.degree(0), 7, "the medium reaches every site");
        for s in 1..8 {
            assert_eq!(t.degree(s), 1);
        }
        assert_eq!(t.name(), "bus-7");
    }

    #[test]
    fn complete_graph_link_count() {
        let t = Topology::fully_connected(101);
        assert_eq!(t.num_links(), 5050);
        for s in 0..101 {
            assert_eq!(t.degree(s), 100);
        }
    }

    #[test]
    fn paper_link_counts() {
        // §1: "101 sites and up to 5050 links (fully-connected)".
        for (k, expect) in [
            (0, 101),
            (1, 102),
            (2, 103),
            (4, 105),
            (16, 117),
            (256, 357),
        ] {
            let t = Topology::ring_with_chords(101, k);
            assert_eq!(t.num_links(), expect, "topology {k}");
        }
        let full = Topology::ring_with_chords(101, 4949);
        assert_eq!(full.num_links(), 5050);
    }

    #[test]
    fn max_chords_yields_complete_graph() {
        let t = Topology::ring_with_chords(101, 4949);
        for s in 0..101 {
            assert_eq!(t.degree(s), 100, "site {s}");
        }
    }

    #[test]
    fn single_chord_is_diametric() {
        let t = Topology::ring_with_chords(101, 1);
        // Ring links + one chord (0, 50).
        assert!(t.links().contains(&(0, 50)));
    }

    #[test]
    fn chords_are_deterministic() {
        let a = Topology::ring_with_chords(101, 16);
        let b = Topology::ring_with_chords(101, 16);
        assert_eq!(a.links(), b.links());
    }

    #[test]
    fn chord_spread_for_small_k() {
        // Even n: the distance-n/2 class duplicates each chord; dedup must
        // still deliver exactly k distinct chords.
        let t = Topology::ring_with_chords(100, 2);
        assert_eq!(t.num_links(), 102);
    }

    #[test]
    fn small_k_chords_cross_rather_than_share_endpoints() {
        // Golden-stride placement: the first few diametric chords must not
        // share endpoints (a shared endpoint makes both chords die with
        // one site, defeating the redundancy they exist for).
        let t = Topology::ring_with_chords(101, 4);
        let chords: Vec<(usize, usize)> = t.links()[101..].to_vec();
        assert_eq!(chords.len(), 4);
        for (i, &(a1, b1)) in chords.iter().enumerate() {
            for &(a2, b2) in &chords[i + 1..] {
                assert!(
                    a1 != a2 && a1 != b2 && b1 != a2 && b1 != b2,
                    "chords ({a1},{b1}) and ({a2},{b2}) share an endpoint"
                );
            }
        }
        // All early chords are (near-)diametric.
        for &(a, b) in &chords {
            let d = (b - a).min(101 - (b - a));
            assert_eq!(d, 50, "chord ({a},{b}) is not diametric");
        }
    }

    #[test]
    fn even_ring_full_chords() {
        let n = 10;
        let max = n * (n - 1) / 2 - n;
        let t = Topology::ring_with_chords(n, max);
        assert_eq!(t.num_links(), n * (n - 1) / 2);
    }

    #[test]
    fn grid_counts() {
        let t = Topology::grid(3, 4);
        assert_eq!(t.num_sites(), 12);
        // 3*3 horizontal + 2*4 vertical = 17.
        assert_eq!(t.num_links(), 17);
    }

    #[test]
    fn star_structure() {
        let t = Topology::star(6);
        assert_eq!(t.degree(0), 5);
        for s in 1..6 {
            assert_eq!(t.degree(s), 1);
        }
    }

    #[test]
    fn path_structure() {
        let t = Topology::path(4);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(1), 2);
    }

    #[test]
    fn torus_structure() {
        let t = Topology::torus(3, 4);
        assert_eq!(t.num_sites(), 12);
        assert_eq!(t.num_links(), 24, "2 links per site on a torus");
        for s in 0..12 {
            assert_eq!(t.degree(s), 4);
        }
    }

    #[test]
    fn hypercube_structure() {
        let t = Topology::hypercube(4);
        assert_eq!(t.num_sites(), 16);
        assert_eq!(t.num_links(), 32); // n·d/2
        for s in 0..16 {
            assert_eq!(t.degree(s), 4);
        }
        // Neighbors differ in exactly one bit.
        for &(a, b) in t.links() {
            assert_eq!((a ^ b).count_ones(), 1, "({a},{b})");
        }
    }

    #[test]
    fn hypercube_dimension_one_is_single_edge() {
        let t = Topology::hypercube(1);
        assert_eq!(t.num_sites(), 2);
        assert_eq!(t.num_links(), 1);
    }

    #[test]
    #[should_panic(expected = "both dimensions")]
    fn tiny_torus_rejected() {
        Topology::torus(2, 5);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let empty = Topology::gnp(10, 0.0, &mut rng);
        assert_eq!(empty.num_links(), 0);
        let full = Topology::gnp(10, 1.0, &mut rng);
        assert_eq!(full.num_links(), 45);
    }

    #[test]
    fn ring_of_clusters_structure() {
        let t = Topology::ring_of_clusters(4, 3);
        assert_eq!(t.num_sites(), 12);
        // Per cluster: C(3,2)=3 internal + 1 WAN link → 4·4 = 16.
        assert_eq!(t.num_links(), 16);
        // Gateways carry the extra WAN degree: member 0 sends the
        // outgoing WAN link, member 1 receives the incoming one.
        assert_eq!(t.degree(0), 3, "member 0: 2 internal + outgoing WAN");
        assert_eq!(t.degree(1), 3, "member 1: 2 internal + incoming WAN");
        assert_eq!(t.degree(2), 2, "member 2: internal only");
    }

    #[test]
    fn ring_of_clusters_is_connected() {
        use crate::{ComponentView, NetworkState};
        let t = Topology::ring_of_clusters(5, 4);
        let s = NetworkState::all_up(&t);
        let v = ComponentView::compute(&t, &s, &[1; 20]);
        assert_eq!(v.num_components(), 1);
    }

    #[test]
    fn diameters_of_known_topologies() {
        assert_eq!(Topology::ring(8).diameter(), Some(4));
        assert_eq!(Topology::ring(9).diameter(), Some(4));
        assert_eq!(Topology::fully_connected(10).diameter(), Some(1));
        assert_eq!(Topology::star(7).diameter(), Some(2));
        assert_eq!(Topology::path(5).diameter(), Some(4));
        assert_eq!(Topology::hypercube(4).diameter(), Some(4));
        assert_eq!(
            Topology::from_links(3, vec![(0, 1)], "disconnected").diameter(),
            None
        );
    }

    #[test]
    fn chords_shrink_ring_diameter() {
        let ring = Topology::ring_with_chords(101, 0).diameter().unwrap();
        let t16 = Topology::ring_with_chords(101, 16).diameter().unwrap();
        let t256 = Topology::ring_with_chords(101, 256).diameter().unwrap();
        assert_eq!(ring, 50);
        assert!(t16 < ring, "16 chords must shrink the diameter: {t16}");
        assert!(t256 < t16, "256 chords shrink it further: {t256}");
    }

    #[test]
    fn adjacency_is_symmetric() {
        let t = Topology::ring_with_chords(21, 8);
        for s in 0..21 {
            for &(nb, li) in t.neighbors(s) {
                assert!(t.neighbors(nb).iter().any(|&(x, l)| x == s && l == li));
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_links_rejected() {
        Topology::from_links(3, vec![(0, 1), (1, 0)], "dup");
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Topology::from_links(3, vec![(1, 1)], "loop");
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_chords_rejected() {
        Topology::ring_with_chords(101, 4950);
    }
}
