//! Component labelling over the up-subgraph.
//!
//! A *component* (paper §2.2) is a maximal set of operational sites that can
//! communicate through operational links. [`ComponentView`] labels every up
//! site with a component id and totals the votes per component — precisely
//! the `v` in the paper's density `f_i(v)`. Down sites are "members of a
//! component of size zero" (§5.2), represented here by [`ComponentView::DOWN`].
//!
//! [`ComponentCache`] adds the dirty-flag memoization used by the
//! simulator: accesses between two topology events see the same partition,
//! so the BFS need only rerun when a failure/recovery actually intervened.

use crate::bitset::BitSet;
use crate::delta::{DeltaConnectivity, DeltaCounters, DeltaOutcome, TopologyEvent};
use crate::state::NetworkState;
use crate::topology::Topology;

/// A snapshot of the network's partition into components.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentView {
    /// Component id per site; [`ComponentView::DOWN`] for down sites.
    comp_id: Vec<u32>,
    /// Total votes per component id.
    comp_votes: Vec<u64>,
    /// Number of up sites per component id.
    comp_sizes: Vec<u32>,
    /// Member bitset per component id — built once at compute time so
    /// membership reads are O(words) with no per-access allocation.
    members: Vec<BitSet>,
}

impl ComponentView {
    /// Marker id for non-operational sites.
    pub const DOWN: u32 = u32::MAX;

    /// Computes the partition of `topology` under `state`, weighting each
    /// site by `votes[site]`.
    ///
    /// # Panics
    /// Panics if `votes.len()` differs from the site count.
    pub fn compute(topology: &Topology, state: &NetworkState, votes: &[u64]) -> Self {
        let n = topology.num_sites();
        assert_eq!(votes.len(), n, "one vote weight per site");
        let mut comp_id = vec![Self::DOWN; n];
        let mut comp_votes = Vec::new();
        let mut comp_sizes = Vec::new();
        let mut members = Vec::new();
        let mut queue = Vec::with_capacity(n);
        for start in 0..n {
            if !state.site_up(start) || comp_id[start] != Self::DOWN {
                continue;
            }
            let id = comp_votes.len() as u32;
            comp_votes.push(0u64);
            comp_sizes.push(0u32);
            members.push(BitSet::new(n));
            comp_id[start] = id;
            queue.clear();
            queue.push(start);
            while let Some(s) = queue.pop() {
                comp_votes[id as usize] += votes[s];
                comp_sizes[id as usize] += 1;
                members[id as usize].set(s, true);
                for &(nb, link) in topology.neighbors(s) {
                    if state.link_up(link) && state.site_up(nb) && comp_id[nb] == Self::DOWN {
                        comp_id[nb] = id;
                        queue.push(nb);
                    }
                }
            }
        }
        Self {
            comp_id,
            comp_votes,
            comp_sizes,
            members,
        }
    }

    /// Assembles a view from precomputed parts (the incremental kernel's
    /// canonical materialization).
    pub(crate) fn from_parts(
        comp_id: Vec<u32>,
        comp_votes: Vec<u64>,
        comp_sizes: Vec<u32>,
        members: Vec<BitSet>,
    ) -> Self {
        Self {
            comp_id,
            comp_votes,
            comp_sizes,
            members,
        }
    }

    /// Component id of `site`, or [`Self::DOWN`].
    #[inline]
    pub fn component_of(&self, site: usize) -> u32 {
        self.comp_id[site]
    }

    /// Votes reachable from `site` (0 if the site is down — the paper's
    /// "component of size zero" convention).
    #[inline]
    pub fn votes_of(&self, site: usize) -> u64 {
        match self.comp_id[site] {
            Self::DOWN => 0,
            id => self.comp_votes[id as usize],
        }
    }

    /// Number of up sites in the component containing `site` (0 if down).
    #[inline]
    pub fn size_of(&self, site: usize) -> u32 {
        match self.comp_id[site] {
            Self::DOWN => 0,
            id => self.comp_sizes[id as usize],
        }
    }

    /// Number of components (down sites excluded).
    pub fn num_components(&self) -> usize {
        self.comp_votes.len()
    }

    /// Vote totals per component.
    pub fn component_votes(&self) -> &[u64] {
        &self.comp_votes
    }

    /// Up-site counts per component.
    pub fn component_sizes(&self) -> &[u32] {
        &self.comp_sizes
    }

    /// Maximum votes held by any component (0 if every site is down).
    ///
    /// This is the quantity behind the SURV metric (§3, footnote 3).
    pub fn largest_component_votes(&self) -> u64 {
        self.comp_votes.iter().copied().max().unwrap_or(0)
    }

    /// True if `a` and `b` are both up and mutually reachable.
    pub fn connected(&self, a: usize, b: usize) -> bool {
        self.comp_id[a] != Self::DOWN && self.comp_id[a] == self.comp_id[b]
    }

    /// Member lists of every component, indexed by component id.
    ///
    /// Allocates; access paths should prefer [`Self::member_bits`] or
    /// [`Self::members_of_component`].
    pub fn all_components(&self) -> Vec<Vec<usize>> {
        self.members
            .iter()
            .map(|bits| bits.iter_ones().collect())
            .collect()
    }

    /// Member bitset of component `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range (including [`Self::DOWN`]).
    pub fn member_bits(&self, id: u32) -> &BitSet {
        &self.members[id as usize]
    }

    /// Iterates over the up sites of component `id` in ascending order.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn members_of_component(&self, id: u32) -> impl Iterator<Item = usize> + '_ {
        self.members[id as usize].iter_ones()
    }

    /// Members of `site`'s component as a single `u64` site mask
    /// (bit `i` set ⇔ site `i` in the component); `0` when `site` is
    /// down. This is the constant-time handoff to the quorum-algebra
    /// layer, whose general-coterie grant checks are mask containment.
    ///
    /// # Panics
    /// Panics if the universe exceeds 64 sites.
    #[inline]
    pub fn member_mask(&self, site: usize) -> u64 {
        match self.comp_id[site] {
            Self::DOWN => 0,
            id => self.members[id as usize].as_u64_mask(),
        }
    }

    /// Iterates over the up sites in the same component as `site`
    /// (including `site` itself); empty if `site` is down. O(words) via
    /// the per-component member index.
    pub fn members_of(&self, site: usize) -> impl Iterator<Item = usize> + '_ {
        let id = self.comp_id[site];
        let bits = (id != Self::DOWN).then(|| &self.members[id as usize]);
        bits.into_iter().flat_map(|b| b.iter_ones())
    }
}

/// Dirty-flag memoization of [`ComponentView`], optionally backed by the
/// incremental [`DeltaConnectivity`] kernel.
///
/// The simulator calls [`ComponentCache::apply_event`] (or the legacy
/// [`ComponentCache::invalidate`]) on every topology event and
/// [`ComponentCache::view`] on every access; recomputation only happens
/// when at least one event separated two accesses.
///
/// With the kernel enabled ([`ComponentCache::incremental`]) the
/// recomputation is not a whole-graph BFS: recoveries merge components
/// (union-find), failures re-scan one component, and provably
/// partition-preserving events are filtered outright. The served views
/// are bit-identical either way, and so are the hit/recompute counters —
/// both count view calls with at least one intervening event, regardless
/// of how the refresh is produced.
#[derive(Debug, Clone)]
pub struct ComponentCache {
    view: Option<ComponentView>,
    kernel: Option<DeltaConnectivity>,
    use_kernel: bool,
    recomputations: u64,
    hits: u64,
    delta: DeltaCounters,
}

impl ComponentCache {
    /// An empty (dirty) cache refreshing via full BFS — the reference
    /// path every kernel result is pinned against.
    pub fn new() -> Self {
        Self {
            view: None,
            kernel: None,
            use_kernel: false,
            recomputations: 0,
            hits: 0,
            delta: DeltaCounters::default(),
        }
    }

    /// An empty cache refreshing via the incremental kernel.
    pub fn incremental() -> Self {
        Self {
            use_kernel: true,
            ..Self::new()
        }
    }

    /// True if this cache refreshes through the incremental kernel.
    pub fn is_incremental(&self) -> bool {
        self.use_kernel
    }

    /// Marks the cached view stale and drops the kernel (the state may
    /// change arbitrarily before the next [`Self::view`] call).
    pub fn invalidate(&mut self) {
        self.view = None;
        self.kernel = None;
    }

    /// Applies one topology event: the fast path the engines call after
    /// `NetworkState::set_site`/`set_link` reported an actual change
    /// (with `state` already reflecting the event).
    ///
    /// Without the kernel this degenerates to [`Self::invalidate`]. With
    /// it, the kernel absorbs the event incrementally — or, if no kernel
    /// is built yet, is rebuilt from `state` (counted as a full
    /// recompute, so every event lands in exactly one delta counter).
    pub fn apply_event(
        &mut self,
        topology: &Topology,
        state: &NetworkState,
        votes: &[u64],
        event: TopologyEvent,
    ) {
        self.view = None;
        if !self.use_kernel {
            return;
        }
        match &mut self.kernel {
            Some(kernel) => match kernel.apply(event) {
                DeltaOutcome::Merge => self.delta.merges += 1,
                DeltaOutcome::Rescan => self.delta.rescans += 1,
                DeltaOutcome::Noop => self.delta.noops += 1,
            },
            None => {
                // `state` already includes the event, so building from it
                // absorbs the event wholesale.
                self.kernel = Some(DeltaConnectivity::new(topology, state, votes));
                self.delta.full_recomputes += 1;
            }
        }
    }

    /// Returns the current view, refreshing if stale.
    pub fn view(
        &mut self,
        topology: &Topology,
        state: &NetworkState,
        votes: &[u64],
    ) -> &ComponentView {
        if self.view.is_none() {
            if self.use_kernel {
                let kernel = self
                    .kernel
                    .get_or_insert_with(|| DeltaConnectivity::new(topology, state, votes));
                debug_assert!(kernel.in_sync_with(state), "kernel missed an event");
                self.view = Some(kernel.to_view());
            } else {
                self.view = Some(ComponentView::compute(topology, state, votes));
            }
            self.recomputations += 1;
        } else {
            self.hits += 1;
        }
        self.view.as_ref().expect("just ensured")
    }

    /// Number of view refreshes performed (full BFS without the kernel;
    /// canonical re-materializations with it).
    pub fn recomputations(&self) -> u64 {
        self.recomputations
    }

    /// Number of served-from-cache queries.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime fast-path totals (all zero without the kernel).
    pub fn delta_counters(&self) -> DeltaCounters {
        self.delta
    }

    /// Records the cache's lifetime hit/recompute totals and the kernel
    /// fast-path counters into an observability registry under the
    /// [`quorum_obs::keys`] names.
    pub fn observe_into(&self, registry: &quorum_obs::Registry) {
        registry.add(quorum_obs::keys::CACHE_HITS, self.hits);
        registry.add(quorum_obs::keys::CACHE_RECOMPUTATIONS, self.recomputations);
        registry.add(quorum_obs::keys::DELTA_MERGES, self.delta.merges);
        registry.add(quorum_obs::keys::DELTA_RESCANS, self.delta.rescans);
        registry.add(quorum_obs::keys::DELTA_NOOPS, self.delta.noops);
        registry.add(
            quorum_obs::keys::FULL_RECOMPUTES,
            self.delta.full_recomputes,
        );
    }
}

impl Default for ComponentCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_votes(n: usize) -> Vec<u64> {
        vec![1; n]
    }

    #[test]
    fn fully_up_ring_is_one_component() {
        let t = Topology::ring(7);
        let s = NetworkState::all_up(&t);
        let v = ComponentView::compute(&t, &s, &uniform_votes(7));
        assert_eq!(v.num_components(), 1);
        assert_eq!(v.votes_of(3), 7);
        assert_eq!(v.largest_component_votes(), 7);
        assert!(v.connected(0, 6));
    }

    #[test]
    fn down_site_has_zero_votes() {
        let t = Topology::ring(5);
        let mut s = NetworkState::all_up(&t);
        s.set_site(2, false);
        let v = ComponentView::compute(&t, &s, &uniform_votes(5));
        assert_eq!(v.votes_of(2), 0);
        assert_eq!(v.component_of(2), ComponentView::DOWN);
        assert_eq!(v.size_of(2), 0);
        // Remaining 4 sites still connected around the ring.
        assert_eq!(v.votes_of(0), 4);
    }

    #[test]
    fn ring_partitions_with_two_link_failures() {
        let t = Topology::ring(6); // links (0,1),(1,2),(2,3),(3,4),(4,5),(5,0)
        let mut s = NetworkState::all_up(&t);
        s.set_link(0, false); // cut (0,1)
        s.set_link(3, false); // cut (3,4)
        let v = ComponentView::compute(&t, &s, &uniform_votes(6));
        assert_eq!(v.num_components(), 2);
        assert!(v.connected(1, 3));
        assert!(v.connected(4, 0));
        assert!(!v.connected(1, 4));
        assert_eq!(v.votes_of(1), 3); // {1,2,3}
        assert_eq!(v.votes_of(5), 3); // {4,5,0}
    }

    #[test]
    fn single_link_failure_does_not_partition_ring() {
        let t = Topology::ring(6);
        let mut s = NetworkState::all_up(&t);
        s.set_link(2, false);
        let v = ComponentView::compute(&t, &s, &uniform_votes(6));
        assert_eq!(v.num_components(), 1);
        assert_eq!(v.votes_of(0), 6);
    }

    #[test]
    fn weighted_votes_counted() {
        let t = Topology::path(3);
        let mut s = NetworkState::all_up(&t);
        s.set_link(1, false); // separates {0,1} from {2}
        let v = ComponentView::compute(&t, &s, &[5, 2, 9]);
        assert_eq!(v.votes_of(0), 7);
        assert_eq!(v.votes_of(2), 9);
        assert_eq!(v.largest_component_votes(), 9);
    }

    #[test]
    fn site_failure_partitions_star() {
        let t = Topology::star(5);
        let mut s = NetworkState::all_up(&t);
        s.set_site(0, false); // hub down
        let v = ComponentView::compute(&t, &s, &uniform_votes(5));
        assert_eq!(v.num_components(), 4);
        for site in 1..5 {
            assert_eq!(v.votes_of(site), 1);
        }
    }

    #[test]
    fn members_of_lists_component() {
        let t = Topology::ring(6);
        let mut s = NetworkState::all_up(&t);
        s.set_link(0, false);
        s.set_link(3, false);
        let v = ComponentView::compute(&t, &s, &uniform_votes(6));
        let members: Vec<usize> = v.members_of(2).collect();
        assert_eq!(members, vec![1, 2, 3]);
        s.set_site(1, false);
        let v = ComponentView::compute(&t, &s, &uniform_votes(6));
        assert_eq!(v.members_of(1).count(), 0, "down site has no members");
    }

    #[test]
    fn all_components_partitions_up_sites() {
        let t = Topology::ring(6);
        let mut s = NetworkState::all_up(&t);
        s.set_link(0, false);
        s.set_link(3, false);
        s.set_site(5, false);
        let v = ComponentView::compute(&t, &s, &uniform_votes(6));
        let comps = v.all_components();
        let mut all: Vec<usize> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4], "every up site in exactly one");
        for (id, members) in comps.iter().enumerate() {
            for &m in members {
                assert_eq!(v.component_of(m), id as u32);
            }
        }
    }

    #[test]
    fn all_down_network() {
        let t = Topology::ring(4);
        let s = NetworkState::all_down(&t);
        let v = ComponentView::compute(&t, &s, &uniform_votes(4));
        assert_eq!(v.num_components(), 0);
        assert_eq!(v.largest_component_votes(), 0);
    }

    #[test]
    fn cache_recomputes_only_when_invalidated() {
        let t = Topology::ring(5);
        let mut s = NetworkState::all_up(&t);
        let votes = uniform_votes(5);
        let mut cache = ComponentCache::new();
        assert_eq!(cache.view(&t, &s, &votes).votes_of(0), 5);
        assert_eq!(cache.view(&t, &s, &votes).votes_of(1), 5);
        assert_eq!(cache.recomputations(), 1);
        assert_eq!(cache.hits(), 1);

        s.set_site(0, false);
        cache.invalidate();
        assert_eq!(cache.view(&t, &s, &votes).votes_of(1), 4);
        assert_eq!(cache.recomputations(), 2);
    }

    #[test]
    fn cache_observation_matches_its_own_counters() {
        let t = Topology::ring(5);
        let mut s = NetworkState::all_up(&t);
        let votes = uniform_votes(5);
        let mut cache = ComponentCache::new();
        for i in 0..6 {
            if i % 3 == 0 {
                s.set_site(i % 5, i % 2 == 0);
                cache.invalidate();
            }
            cache.view(&t, &s, &votes);
        }
        let r = quorum_obs::Registry::new();
        cache.observe_into(&r);
        let snap = r.snapshot();
        assert_eq!(snap.counter(quorum_obs::keys::CACHE_HITS), cache.hits());
        assert_eq!(
            snap.counter(quorum_obs::keys::CACHE_RECOMPUTATIONS),
            cache.recomputations()
        );
        assert_eq!(cache.hits() + cache.recomputations(), 6);
    }

    #[test]
    fn view_matches_fresh_compute_after_many_mutations() {
        let t = Topology::ring_with_chords(21, 8);
        let mut s = NetworkState::all_up(&t);
        let votes = uniform_votes(21);
        let mut cache = ComponentCache::new();
        for i in 0..10 {
            s.set_site(i, i % 2 == 0);
            s.set_link(i, i % 3 != 0);
            cache.invalidate();
            let cached: Vec<u64> = (0..21)
                .map(|x| cache.view(&t, &s, &votes).votes_of(x))
                .collect();
            let fresh = ComponentView::compute(&t, &s, &votes);
            let direct: Vec<u64> = (0..21).map(|x| fresh.votes_of(x)).collect();
            assert_eq!(cached, direct);
        }
    }

    #[test]
    fn incremental_cache_matches_reference_cache() {
        let t = Topology::ring_with_chords(21, 8);
        let mut s = NetworkState::all_up(&t);
        let votes: Vec<u64> = (0..21).map(|i| (i % 3 + 1) as u64).collect();
        let mut fast = ComponentCache::incremental();
        let mut slow = ComponentCache::new();
        for i in 0..40usize {
            if i % 2 == 0 {
                let site = (i * 7) % 21;
                let up = !s.site_up(site);
                s.set_site(site, up);
                fast.apply_event(&t, &s, &votes, TopologyEvent::Site { site, up });
                slow.apply_event(&t, &s, &votes, TopologyEvent::Site { site, up });
            } else {
                let link = (i * 11) % t.num_links();
                let up = !s.link_up(link);
                s.set_link(link, up);
                fast.apply_event(&t, &s, &votes, TopologyEvent::Link { link, up });
                slow.apply_event(&t, &s, &votes, TopologyEvent::Link { link, up });
            }
            let a = fast.view(&t, &s, &votes).clone();
            let b = slow.view(&t, &s, &votes).clone();
            assert_eq!(a, b, "kernel diverged at step {i}");
        }
        // Counter parity: both caches saw the same call pattern.
        assert_eq!(fast.hits(), slow.hits());
        assert_eq!(fast.recomputations(), slow.recomputations());
        // Every event classified exactly once; the reference path
        // classified none.
        assert_eq!(fast.delta_counters().total(), 40);
        assert_eq!(slow.delta_counters().total(), 0);
    }

    #[test]
    fn incremental_cache_survives_invalidate() {
        let t = Topology::ring(7);
        let mut s = NetworkState::all_up(&t);
        let votes = uniform_votes(7);
        let mut cache = ComponentCache::incremental();
        assert_eq!(cache.view(&t, &s, &votes).votes_of(0), 7);
        // Arbitrary state change without an event: invalidate must drop
        // the kernel, and the next event rebuilds it from state.
        s.set_site(2, false);
        s.set_site(3, false);
        cache.invalidate();
        assert_eq!(cache.view(&t, &s, &votes).votes_of(0), 5);
        s.set_site(3, true);
        cache.apply_event(&t, &s, &votes, TopologyEvent::Site { site: 3, up: true });
        assert_eq!(
            cache.delta_counters().merges,
            1,
            "kernel built by view() absorbs later events incrementally"
        );
        let fresh = ComponentView::compute(&t, &s, &votes);
        assert_eq!(cache.view(&t, &s, &votes), &fresh);
    }

    #[test]
    fn event_before_first_view_counts_full_recompute() {
        let t = Topology::ring(5);
        let mut s = NetworkState::all_up(&t);
        let votes = uniform_votes(5);
        let mut cache = ComponentCache::incremental();
        s.set_site(1, false);
        cache.apply_event(&t, &s, &votes, TopologyEvent::Site { site: 1, up: false });
        assert_eq!(cache.delta_counters().full_recomputes, 1);
        assert_eq!(cache.delta_counters().total(), 1);
        let fresh = ComponentView::compute(&t, &s, &votes);
        assert_eq!(cache.view(&t, &s, &votes), &fresh);
    }

    #[test]
    fn member_index_reads_match_scan() {
        let t = Topology::ring(6);
        let mut s = NetworkState::all_up(&t);
        s.set_link(0, false);
        s.set_link(3, false);
        s.set_site(5, false);
        let v = ComponentView::compute(&t, &s, &uniform_votes(6));
        for id in 0..v.num_components() as u32 {
            let via_iter: Vec<usize> = v.members_of_component(id).collect();
            let via_bits: Vec<usize> = v.member_bits(id).iter_ones().collect();
            assert_eq!(via_iter, via_bits);
            assert_eq!(via_iter.len() as u32, v.component_sizes()[id as usize]);
            for &m in &via_iter {
                assert_eq!(v.component_of(m), id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one vote weight per site")]
    fn wrong_vote_len_rejected() {
        let t = Topology::ring(4);
        let s = NetworkState::all_up(&t);
        ComponentView::compute(&t, &s, &[1, 1, 1]);
    }
}
